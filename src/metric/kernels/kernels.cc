// Scalar reference kernels + tier dispatch (docs/simd_kernels.md).
//
// This translation unit IS the bit-identity contract: every vector tier must
// reproduce these loops byte for byte. It is compiled with -ffp-contract=off
// so the compiler cannot fuse the multiply+add in L2 into an FMA — the
// canonical summation order is sequential over dimensions with unfused
// rounding after every operation.

#include "metric/kernels/kernels.h"

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/macros.h"

namespace mvp::metric::kernels {

// ---------------------------------------------------------------------------
// Scalar canonical reference
// ---------------------------------------------------------------------------

double L1Pair(const double* a, const double* b, std::size_t dim) {
  double sum = 0.0;
  for (std::size_t i = 0; i < dim; ++i) {
    sum += std::fabs(a[i] - b[i]);
  }
  return sum;
}

double L2Pair(const double* a, const double* b, std::size_t dim) {
  double sum = 0.0;
  for (std::size_t i = 0; i < dim; ++i) {
    const double diff = a[i] - b[i];
    sum += diff * diff;
  }
  return std::sqrt(sum);
}

double LInfPair(const double* a, const double* b, std::size_t dim) {
  double best = 0.0;
  for (std::size_t i = 0; i < dim; ++i) {
    const double diff = std::fabs(a[i] - b[i]);
    if (diff > best) best = diff;
  }
  return best;
}

double PairDistance(Family family, const double* a, const double* b,
                    std::size_t dim) {
  switch (family) {
    case Family::kL1:
      return L1Pair(a, b, dim);
    case Family::kL2:
      return L2Pair(a, b, dim);
    case Family::kLInf:
      return LInfPair(a, b, dim);
  }
  MVP_DCHECK(false);
  return 0.0;
}

namespace {

template <Family kFam>
void ScalarOneToMany(const double* query, const double* objects,
                     std::size_t count, std::size_t stride, std::size_t dim,
                     double* out) {
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = PairDistance(kFam, query, objects + i * stride, dim);
  }
}

template <Family kFam>
void ScalarManyToOne(const double* const* queries, std::size_t count,
                     const double* vp, std::size_t dim, double* out) {
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = PairDistance(kFam, queries[i], vp, dim);
  }
}

std::uint64_t ScalarAnnulusMask(double center, const double* values,
                                std::size_t count, double radius) {
  MVP_DCHECK(count <= kAnnulusMaskMaxCount);
  std::uint64_t mask = 0;
  for (std::size_t i = 0; i < count; ++i) {
    if (std::fabs(center - values[i]) <= radius) {
      mask |= std::uint64_t{1} << i;
    }
  }
  return mask;
}

}  // namespace

namespace internal {

const Ops* ScalarOps() {
  static const Ops ops = {
      {&ScalarOneToMany<Family::kL1>, &ScalarOneToMany<Family::kL2>,
       &ScalarOneToMany<Family::kLInf>},
      {&ScalarManyToOne<Family::kL1>, &ScalarManyToOne<Family::kL2>,
       &ScalarManyToOne<Family::kLInf>},
      &ScalarAnnulusMask,
  };
  return &ops;
}

}  // namespace internal

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

const char* TierName(Tier tier) {
  switch (tier) {
    case Tier::kScalar:
      return "scalar";
    case Tier::kAvx2:
      return "avx2";
    case Tier::kAvx512:
      return "avx512";
    case Tier::kNeon:
      return "neon";
  }
  return "unknown";
}

namespace {

const internal::Ops* OpsForTier(Tier tier) {
  switch (tier) {
    case Tier::kScalar:
      return internal::ScalarOps();
    case Tier::kAvx2:
      return internal::Avx2Ops();
    case Tier::kAvx512:
      return internal::Avx512Ops();
    case Tier::kNeon:
      return internal::NeonOps();
  }
  return nullptr;
}

bool TierRunnable(Tier tier) {
  if (OpsForTier(tier) == nullptr) return false;  // not compiled in
  switch (tier) {
    case Tier::kScalar:
      return true;
    case Tier::kAvx2:
#if defined(__x86_64__) || defined(_M_X64)
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case Tier::kAvx512:
#if defined(__x86_64__) || defined(_M_X64)
      return __builtin_cpu_supports("avx512f") != 0 &&
             __builtin_cpu_supports("avx512dq") != 0;
#else
      return false;
#endif
    case Tier::kNeon:
      // NEON is baseline on AArch64: compiled in iff runnable.
      return true;
  }
  return false;
}

// kTierUnresolved means ActiveTier() has not yet consulted the environment.
constexpr int kTierUnresolved = -1;
std::atomic<int> g_active_tier{kTierUnresolved};

bool ParseTierName(std::string_view name, Tier* out) {
  if (name == "scalar") {
    *out = Tier::kScalar;
  } else if (name == "avx2") {
    *out = Tier::kAvx2;
  } else if (name == "avx512") {
    *out = Tier::kAvx512;
  } else if (name == "neon") {
    *out = Tier::kNeon;
  } else {
    return false;
  }
  return true;
}

}  // namespace

bool TierSupported(Tier tier) { return TierRunnable(tier); }

Tier BestSupportedTier() {
  if (TierRunnable(Tier::kAvx512)) return Tier::kAvx512;
  if (TierRunnable(Tier::kAvx2)) return Tier::kAvx2;
  if (TierRunnable(Tier::kNeon)) return Tier::kNeon;
  return Tier::kScalar;
}

namespace internal {

Tier TierFromEnvOrDie(const char* value) {
  if (value == nullptr || value[0] == '\0' ||
      std::string_view(value) == "auto") {
    return BestSupportedTier();
  }
  Tier tier;
  if (!ParseTierName(value, &tier)) {
    std::fprintf(stderr,
                 "MVPT_FORCE_KERNEL=%s: unknown kernel tier (expected "
                 "auto|scalar|avx2|avx512|neon)\n",
                 value);
    std::abort();
  }
  if (!TierRunnable(tier)) {
    std::fprintf(stderr,
                 "MVPT_FORCE_KERNEL=%s: tier is not available on this host; "
                 "refusing to silently fall back\n",
                 value);
    std::abort();
  }
  return tier;
}

}  // namespace internal

Tier ActiveTier() {
  int v = g_active_tier.load(std::memory_order_acquire);
  if (v == kTierUnresolved) {
    // Benign race: concurrent first callers resolve to the same value.
    const Tier tier = internal::TierFromEnvOrDie(std::getenv("MVPT_FORCE_KERNEL"));
    g_active_tier.store(static_cast<int>(tier), std::memory_order_release);
    v = static_cast<int>(tier);
  }
  return static_cast<Tier>(v);
}

Status ForceTier(std::string_view name) {
  if (name == "auto") {
    g_active_tier.store(static_cast<int>(BestSupportedTier()),
                        std::memory_order_release);
    return Status::OK();
  }
  Tier tier;
  if (!ParseTierName(name, &tier)) {
    return Status::InvalidArgument("unknown kernel tier: " +
                                   std::string(name));
  }
  if (!TierRunnable(tier)) {
    return Status::NotSupported(std::string("kernel tier unavailable on this "
                                            "host: ") +
                                TierName(tier));
  }
  g_active_tier.store(static_cast<int>(tier), std::memory_order_release);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Dispatched entry points
// ---------------------------------------------------------------------------

void OneToMany(Family family, const double* query, const double* objects,
               std::size_t count, std::size_t stride, std::size_t dim,
               double* out) {
  MVP_DCHECK(stride >= dim);
  const internal::Ops* ops = OpsForTier(ActiveTier());
  ops->one_to_many[static_cast<int>(family)](query, objects, count, stride,
                                             dim, out);
}

void ManyToOne(Family family, const double* const* queries, std::size_t count,
               const double* vp, std::size_t dim, double* out) {
  const internal::Ops* ops = OpsForTier(ActiveTier());
  ops->many_to_one[static_cast<int>(family)](queries, count, vp, dim, out);
}

std::uint64_t AnnulusMask(double center, const double* values,
                          std::size_t count, double radius) {
  const internal::Ops* ops = OpsForTier(ActiveTier());
  return ops->annulus_mask(center, values, count, radius);
}

}  // namespace mvp::metric::kernels

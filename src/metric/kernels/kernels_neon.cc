// NEON tier: 2 double lanes per vector register, lane-per-object batching
// (docs/simd_kernels.md). NEON is baseline on AArch64, so the tier is
// available exactly when this TU compiles its implementation. Compiled with
// -ffp-contract=off; same bit-identity rules as the x86 tiers: vectorise
// across the batch, sequential per-lane accumulation, vabsq abs (sign-bit
// clear), compare+select L∞ (never vmaxq, whose NaN semantics differ from
// the scalar `if (diff > best)`), no FMA.

#include "metric/kernels/kernels.h"

#if defined(__aarch64__)

#include <arm_neon.h>

#include <cmath>

namespace mvp::metric::kernels {
namespace {

template <Family kFam>
inline float64x2_t Accumulate(float64x2_t acc, float64x2_t diff) {
  if constexpr (kFam == Family::kL1) {
    return vaddq_f64(acc, vabsq_f64(diff));
  } else if constexpr (kFam == Family::kL2) {
    return vaddq_f64(acc, vmulq_f64(diff, diff));
  } else {
    const float64x2_t cur = vabsq_f64(diff);
    const uint64x2_t gt = vcgtq_f64(cur, acc);
    return vbslq_f64(gt, cur, acc);
  }
}

template <Family kFam>
inline float64x2_t Finish(float64x2_t acc) {
  if constexpr (kFam == Family::kL2) {
    return vsqrtq_f64(acc);
  } else {
    return acc;
  }
}

// Two vectors (lane-per-vector) against one broadcast vector.
template <Family kFam, bool kQueryBroadcast>
inline void Distance2(const double* broadcast, const double* const rows[2],
                      std::size_t dim, double* out2) {
  float64x2_t acc = vdupq_n_f64(0.0);
  std::size_t i = 0;
  for (; i + 2 <= dim; i += 2) {
    const float64x2_t a = vld1q_f64(rows[0] + i);
    const float64x2_t b = vld1q_f64(rows[1] + i);
    const float64x2_t col0 = vzip1q_f64(a, b);
    const float64x2_t col1 = vzip2q_f64(a, b);
    const float64x2_t bv0 = vdupq_n_f64(broadcast[i]);
    const float64x2_t bv1 = vdupq_n_f64(broadcast[i + 1]);
    acc = Accumulate<kFam>(acc, kQueryBroadcast ? vsubq_f64(bv0, col0)
                                                : vsubq_f64(col0, bv0));
    acc = Accumulate<kFam>(acc, kQueryBroadcast ? vsubq_f64(bv1, col1)
                                                : vsubq_f64(col1, bv1));
  }
  for (; i < dim; ++i) {
    float64x2_t col = vdupq_n_f64(rows[0][i]);
    col = vsetq_lane_f64(rows[1][i], col, 1);
    const float64x2_t bv = vdupq_n_f64(broadcast[i]);
    acc = Accumulate<kFam>(acc, kQueryBroadcast ? vsubq_f64(bv, col)
                                                : vsubq_f64(col, bv));
  }
  vst1q_f64(out2, Finish<kFam>(acc));
}

template <Family kFam>
void NeonOneToMany(const double* query, const double* objects,
                   std::size_t count, std::size_t stride, std::size_t dim,
                   double* out) {
  std::size_t i = 0;
  for (; i + 2 <= count; i += 2) {
    const double* rows[2] = {objects + (i + 0) * stride,
                             objects + (i + 1) * stride};
    Distance2<kFam, /*kQueryBroadcast=*/true>(query, rows, dim, out + i);
  }
  for (; i < count; ++i) {
    out[i] = PairDistance(kFam, query, objects + i * stride, dim);
  }
}

template <Family kFam>
void NeonManyToOne(const double* const* queries, std::size_t count,
                   const double* vp, std::size_t dim, double* out) {
  std::size_t i = 0;
  for (; i + 2 <= count; i += 2) {
    const double* rows[2] = {queries[i + 0], queries[i + 1]};
    Distance2<kFam, /*kQueryBroadcast=*/false>(vp, rows, dim, out + i);
  }
  for (; i < count; ++i) {
    out[i] = PairDistance(kFam, queries[i], vp, dim);
  }
}

std::uint64_t NeonAnnulusMask(double center, const double* values,
                              std::size_t count, double radius) {
  const float64x2_t c = vdupq_n_f64(center);
  const float64x2_t r = vdupq_n_f64(radius);
  std::uint64_t mask = 0;
  std::size_t i = 0;
  for (; i + 2 <= count; i += 2) {
    const float64x2_t diff = vabsq_f64(vsubq_f64(c, vld1q_f64(values + i)));
    const uint64x2_t le = vcleq_f64(diff, r);
    mask |= (vgetq_lane_u64(le, 0) & 1) << i;
    mask |= (vgetq_lane_u64(le, 1) & 1) << (i + 1);
  }
  for (; i < count; ++i) {
    if (std::fabs(center - values[i]) <= radius) {
      mask |= std::uint64_t{1} << i;
    }
  }
  return mask;
}

}  // namespace

namespace internal {

const Ops* NeonOps() {
  static const Ops ops = {
      {&NeonOneToMany<Family::kL1>, &NeonOneToMany<Family::kL2>,
       &NeonOneToMany<Family::kLInf>},
      {&NeonManyToOne<Family::kL1>, &NeonManyToOne<Family::kL2>,
       &NeonManyToOne<Family::kLInf>},
      &NeonAnnulusMask,
  };
  return &ops;
}

}  // namespace internal
}  // namespace mvp::metric::kernels

#else  // !__aarch64__

namespace mvp::metric::kernels::internal {
const Ops* NeonOps() { return nullptr; }
}  // namespace mvp::metric::kernels::internal

#endif

#ifndef MVPTREE_METRIC_LP_H_
#define MVPTREE_METRIC_LP_H_

#include <cmath>
#include <cstddef>
#include <vector>

#include "common/macros.h"

/// \file
/// Minkowski (Lp) metrics on dense real vectors — the distance family used
/// throughout the paper's vector experiments (§5.1.A uses L2; §5.1.B notes
/// "Any Lp metric can be used just like L1 or L2", including a per-dimension
/// weighted variant, which "can be easily shown to be metric").
///
/// All metrics operate on dense real vectors and require equal dimensions
/// (checked with MVP_DCHECK — mixing dimensions is a programming error).
/// Each operator() is a template over two vector-like arguments (anything
/// with size() and operator[]), so the same metric — and the same floating
/// point expression, hence bit-identical distances — applies to an owned
/// std::vector<double> and to a zero-copy view over an mmap'd flat arena
/// (snapshot/flat_tree.h). A concrete (Vector, Vector) overload delegates
/// to the template so braced-initializer calls like d({0, 1}, {1, 0})
/// still deduce.

namespace mvp::metric {

using Vector = std::vector<double>;

/// L2 (Euclidean) distance.
struct L2 {
  template <typename A, typename B>
  double operator()(const A& a, const B& b) const {
    MVP_DCHECK(a.size() == b.size());
    double sum = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
      const double diff = a[i] - b[i];
      sum += diff * diff;
    }
    return std::sqrt(sum);
  }
  double operator()(const Vector& a, const Vector& b) const {
    return operator()<Vector, Vector>(a, b);
  }
};

/// L1 (Manhattan) distance: accumulated absolute differences per dimension.
struct L1 {
  template <typename A, typename B>
  double operator()(const A& a, const B& b) const {
    MVP_DCHECK(a.size() == b.size());
    double sum = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
      sum += std::fabs(a[i] - b[i]);
    }
    return sum;
  }
  double operator()(const Vector& a, const Vector& b) const {
    return operator()<Vector, Vector>(a, b);
  }
};

/// L-infinity (Chebyshev) distance: the limit of Lp as p -> inf.
struct LInf {
  template <typename A, typename B>
  double operator()(const A& a, const B& b) const {
    MVP_DCHECK(a.size() == b.size());
    double best = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
      const double diff = std::fabs(a[i] - b[i]);
      if (diff > best) best = diff;
    }
    return best;
  }
  double operator()(const Vector& a, const Vector& b) const {
    return operator()<Vector, Vector>(a, b);
  }
};

/// General Lp distance for p >= 1 (p < 1 does not satisfy the triangle
/// inequality and is rejected).
class Lp {
 public:
  explicit Lp(double p) : p_(p) { MVP_DCHECK(p >= 1.0); }

  template <typename A, typename B>
  double operator()(const A& a, const B& b) const {
    MVP_DCHECK(a.size() == b.size());
    double sum = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
      sum += std::pow(std::fabs(a[i] - b[i]), p_);
    }
    return std::pow(sum, 1.0 / p_);
  }
  double operator()(const Vector& a, const Vector& b) const {
    return operator()<Vector, Vector>(a, b);
  }

  double p() const { return p_; }

 private:
  double p_;
};

/// Weighted Lp: each dimension's difference is scaled by a non-negative
/// weight before accumulation (the paper suggests weighting pixel positions
/// to emphasize image regions, §5.1.B). Metric for any weights >= 0.
class WeightedLp {
 public:
  WeightedLp(double p, Vector weights) : p_(p), weights_(std::move(weights)) {
    MVP_DCHECK(p >= 1.0);
#ifndef NDEBUG
    for (double w : weights_) MVP_DCHECK(w >= 0.0);
#endif
  }

  template <typename A, typename B>
  double operator()(const A& a, const B& b) const {
    MVP_DCHECK(a.size() == b.size());
    MVP_DCHECK(a.size() == weights_.size());
    double sum = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
      sum += std::pow(weights_[i] * std::fabs(a[i] - b[i]), p_);
    }
    return std::pow(sum, 1.0 / p_);
  }
  double operator()(const Vector& a, const Vector& b) const {
    return operator()<Vector, Vector>(a, b);
  }

  const Vector& weights() const { return weights_; }

 private:
  double p_;
  Vector weights_;
};

}  // namespace mvp::metric

#endif  // MVPTREE_METRIC_LP_H_

#ifndef MVPTREE_METRIC_LP_H_
#define MVPTREE_METRIC_LP_H_

#include <cmath>
#include <concepts>
#include <cstddef>
#include <vector>

#include "common/macros.h"
#include "metric/kernels/kernels.h"

/// \file
/// Minkowski (Lp) metrics on dense real vectors — the distance family used
/// throughout the paper's vector experiments (§5.1.A uses L2; §5.1.B notes
/// "Any Lp metric can be used just like L1 or L2", including a per-dimension
/// weighted variant, which "can be easily shown to be metric").
///
/// All metrics operate on dense real vectors and require equal dimensions
/// (checked with MVP_DCHECK — mixing dimensions is a programming error).
/// Each operator() is a template over two vector-like arguments (anything
/// with size() and operator[]), so the same metric — and the same floating
/// point expression, hence bit-identical distances — applies to an owned
/// std::vector<double> and to a zero-copy view over an mmap'd flat arena
/// (snapshot/flat_tree.h). A concrete (Vector, Vector) overload delegates
/// to the template so braced-initializer calls like d({0, 1}, {1, 0})
/// still deduce.

namespace mvp::metric {

using Vector = std::vector<double>;

namespace internal {

/// Vector-like types exposing contiguous double storage (std::vector<double>,
/// snapshot::flat::VectorView, std::array<double, N>, ...). Pairs of these
/// delegate to the out-of-line scalar kernels in metric/kernels/ — the
/// canonical reference compiled with -ffp-contract=off, so the result is
/// bit-identical on every architecture. Non-contiguous argument types keep
/// the inline loop, which evaluates the same expression in the same order.
template <typename T>
concept DenseDoubleRange = requires(const T& t) {
  { t.data() } -> std::convertible_to<const double*>;
  { t.size() } -> std::convertible_to<std::size_t>;
};

/// Returns p as an int when it is a small integral value (the exponents the
/// fast paths cover), else 0.
inline int IntegralExponent(double p) {
  constexpr double kMaxFastExponent = 64.0;
  if (p < 1.0 || p > kMaxFastExponent) return 0;
  const int ip = static_cast<int>(p);
  return static_cast<double>(ip) == p ? ip : 0;
}

/// x^n for n >= 1 by a left-to-right multiply chain (x*x*x*... in order, so
/// the result is deterministic across platforms; not correctly rounded for
/// n >= 3, which only affects exponents with no bit-identity pin).
inline double PowInt(double x, int n) {
  double r = x;
  for (int i = 1; i < n; ++i) r *= x;
  return r;
}

}  // namespace internal

/// L2 (Euclidean) distance.
struct L2 {
  template <typename A, typename B>
  double operator()(const A& a, const B& b) const {
    MVP_DCHECK(a.size() == b.size());
    if constexpr (internal::DenseDoubleRange<A> &&
                  internal::DenseDoubleRange<B>) {
      return kernels::L2Pair(a.data(), b.data(), a.size());
    } else {
      double sum = 0.0;
      for (std::size_t i = 0; i < a.size(); ++i) {
        const double diff = a[i] - b[i];
        sum += diff * diff;
      }
      return std::sqrt(sum);
    }
  }
  double operator()(const Vector& a, const Vector& b) const {
    return operator()<Vector, Vector>(a, b);
  }
};

/// L1 (Manhattan) distance: accumulated absolute differences per dimension.
struct L1 {
  template <typename A, typename B>
  double operator()(const A& a, const B& b) const {
    MVP_DCHECK(a.size() == b.size());
    if constexpr (internal::DenseDoubleRange<A> &&
                  internal::DenseDoubleRange<B>) {
      return kernels::L1Pair(a.data(), b.data(), a.size());
    } else {
      double sum = 0.0;
      for (std::size_t i = 0; i < a.size(); ++i) {
        sum += std::fabs(a[i] - b[i]);
      }
      return sum;
    }
  }
  double operator()(const Vector& a, const Vector& b) const {
    return operator()<Vector, Vector>(a, b);
  }
};

/// L-infinity (Chebyshev) distance: the limit of Lp as p -> inf.
struct LInf {
  template <typename A, typename B>
  double operator()(const A& a, const B& b) const {
    MVP_DCHECK(a.size() == b.size());
    if constexpr (internal::DenseDoubleRange<A> &&
                  internal::DenseDoubleRange<B>) {
      return kernels::LInfPair(a.data(), b.data(), a.size());
    } else {
      double best = 0.0;
      for (std::size_t i = 0; i < a.size(); ++i) {
        const double diff = std::fabs(a[i] - b[i]);
        if (diff > best) best = diff;
      }
      return best;
    }
  }
  double operator()(const Vector& a, const Vector& b) const {
    return operator()<Vector, Vector>(a, b);
  }
};

/// General Lp distance for p >= 1 (p < 1 does not satisfy the triangle
/// inequality and is rejected).
class Lp {
 public:
  explicit Lp(double p) : p_(p), int_p_(internal::IntegralExponent(p)) {
    MVP_DCHECK(p >= 1.0);
  }

  template <typename A, typename B>
  double operator()(const A& a, const B& b) const {
    MVP_DCHECK(a.size() == b.size());
    // Integer-exponent fast path: std::pow per element is ~100x the cost of
    // a multiply chain. p=1 and p=2 are bit-identical to the generic
    // expression (and to metric::L1/L2): glibc pow is correctly rounded, so
    // pow(x, 1.0) == x, pow(x, 2.0) == x*x and pow(s, 0.5) == sqrt(s).
    if (int_p_ == 1) {
      double sum = 0.0;
      for (std::size_t i = 0; i < a.size(); ++i) {
        sum += std::fabs(a[i] - b[i]);
      }
      return sum;
    }
    if (int_p_ == 2) {
      double sum = 0.0;
      for (std::size_t i = 0; i < a.size(); ++i) {
        const double diff = std::fabs(a[i] - b[i]);
        sum += diff * diff;
      }
      return std::sqrt(sum);
    }
    if (int_p_ > 2) {
      double sum = 0.0;
      for (std::size_t i = 0; i < a.size(); ++i) {
        sum += internal::PowInt(std::fabs(a[i] - b[i]), int_p_);
      }
      return std::pow(sum, 1.0 / p_);
    }
    double sum = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
      sum += std::pow(std::fabs(a[i] - b[i]), p_);
    }
    return std::pow(sum, 1.0 / p_);
  }
  double operator()(const Vector& a, const Vector& b) const {
    return operator()<Vector, Vector>(a, b);
  }

  double p() const { return p_; }

 private:
  double p_;
  int int_p_;
};

/// Weighted Lp: each dimension's difference is scaled by a non-negative
/// weight before accumulation (the paper suggests weighting pixel positions
/// to emphasize image regions, §5.1.B). Metric for any weights >= 0.
class WeightedLp {
 public:
  WeightedLp(double p, Vector weights)
      : p_(p),
        int_p_(internal::IntegralExponent(p)),
        weights_(std::move(weights)) {
    MVP_DCHECK(p >= 1.0);
#ifndef NDEBUG
    for (double w : weights_) MVP_DCHECK(w >= 0.0);
#endif
  }

  template <typename A, typename B>
  double operator()(const A& a, const B& b) const {
    MVP_DCHECK(a.size() == b.size());
    MVP_DCHECK(a.size() == weights_.size());
    // Same integer-exponent fast path as Lp; p=1 and p=2 stay bit-identical
    // to the generic std::pow expression.
    if (int_p_ == 1) {
      double sum = 0.0;
      for (std::size_t i = 0; i < a.size(); ++i) {
        sum += weights_[i] * std::fabs(a[i] - b[i]);
      }
      return sum;
    }
    if (int_p_ == 2) {
      double sum = 0.0;
      for (std::size_t i = 0; i < a.size(); ++i) {
        const double term = weights_[i] * std::fabs(a[i] - b[i]);
        sum += term * term;
      }
      return std::sqrt(sum);
    }
    if (int_p_ > 2) {
      double sum = 0.0;
      for (std::size_t i = 0; i < a.size(); ++i) {
        sum += internal::PowInt(weights_[i] * std::fabs(a[i] - b[i]), int_p_);
      }
      return std::pow(sum, 1.0 / p_);
    }
    double sum = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
      sum += std::pow(weights_[i] * std::fabs(a[i] - b[i]), p_);
    }
    return std::pow(sum, 1.0 / p_);
  }
  double operator()(const Vector& a, const Vector& b) const {
    return operator()<Vector, Vector>(a, b);
  }

  const Vector& weights() const { return weights_; }

 private:
  double p_;
  int int_p_;
  Vector weights_;
};

/// Batch-kernel families for the dense Minkowski metrics (the primary
/// template in metric/kernels/kernels.h marks everything else unavailable).
template <>
struct kernels::FamilyFor<L1> {
  static constexpr bool available = true;
  static constexpr kernels::Family family = kernels::Family::kL1;
};
template <>
struct kernels::FamilyFor<L2> {
  static constexpr bool available = true;
  static constexpr kernels::Family family = kernels::Family::kL2;
};
template <>
struct kernels::FamilyFor<LInf> {
  static constexpr bool available = true;
  static constexpr kernels::Family family = kernels::Family::kLInf;
};

}  // namespace mvp::metric

#endif  // MVPTREE_METRIC_LP_H_

#ifndef MVPTREE_METRIC_LP_H_
#define MVPTREE_METRIC_LP_H_

#include <cmath>
#include <cstddef>
#include <vector>

#include "common/macros.h"

/// \file
/// Minkowski (Lp) metrics on dense real vectors — the distance family used
/// throughout the paper's vector experiments (§5.1.A uses L2; §5.1.B notes
/// "Any Lp metric can be used just like L1 or L2", including a per-dimension
/// weighted variant, which "can be easily shown to be metric").
///
/// All metrics operate on std::vector<double> and require equal dimensions
/// (checked with MVP_DCHECK — mixing dimensions is a programming error).

namespace mvp::metric {

using Vector = std::vector<double>;

/// L2 (Euclidean) distance.
struct L2 {
  double operator()(const Vector& a, const Vector& b) const {
    MVP_DCHECK(a.size() == b.size());
    double sum = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
      const double diff = a[i] - b[i];
      sum += diff * diff;
    }
    return std::sqrt(sum);
  }
};

/// L1 (Manhattan) distance: accumulated absolute differences per dimension.
struct L1 {
  double operator()(const Vector& a, const Vector& b) const {
    MVP_DCHECK(a.size() == b.size());
    double sum = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
      sum += std::fabs(a[i] - b[i]);
    }
    return sum;
  }
};

/// L-infinity (Chebyshev) distance: the limit of Lp as p -> inf.
struct LInf {
  double operator()(const Vector& a, const Vector& b) const {
    MVP_DCHECK(a.size() == b.size());
    double best = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
      const double diff = std::fabs(a[i] - b[i]);
      if (diff > best) best = diff;
    }
    return best;
  }
};

/// General Lp distance for p >= 1 (p < 1 does not satisfy the triangle
/// inequality and is rejected).
class Lp {
 public:
  explicit Lp(double p) : p_(p) { MVP_DCHECK(p >= 1.0); }

  double operator()(const Vector& a, const Vector& b) const {
    MVP_DCHECK(a.size() == b.size());
    double sum = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
      sum += std::pow(std::fabs(a[i] - b[i]), p_);
    }
    return std::pow(sum, 1.0 / p_);
  }

  double p() const { return p_; }

 private:
  double p_;
};

/// Weighted Lp: each dimension's difference is scaled by a non-negative
/// weight before accumulation (the paper suggests weighting pixel positions
/// to emphasize image regions, §5.1.B). Metric for any weights >= 0.
class WeightedLp {
 public:
  WeightedLp(double p, Vector weights) : p_(p), weights_(std::move(weights)) {
    MVP_DCHECK(p >= 1.0);
#ifndef NDEBUG
    for (double w : weights_) MVP_DCHECK(w >= 0.0);
#endif
  }

  double operator()(const Vector& a, const Vector& b) const {
    MVP_DCHECK(a.size() == b.size());
    MVP_DCHECK(a.size() == weights_.size());
    double sum = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
      sum += std::pow(weights_[i] * std::fabs(a[i] - b[i]), p_);
    }
    return std::pow(sum, 1.0 / p_);
  }

  const Vector& weights() const { return weights_; }

 private:
  double p_;
  Vector weights_;
};

}  // namespace mvp::metric

#endif  // MVPTREE_METRIC_LP_H_

#ifndef MVPTREE_METRIC_AXIOMS_H_
#define MVPTREE_METRIC_AXIOMS_H_

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "common/status.h"
#include "metric/metric.h"

/// \file
/// Runtime validation of the metric-space axioms (§2 of the paper) on a
/// sample of a user's data. Every index in this library silently returns
/// wrong results if handed a non-metric "distance" (e.g. cosine distance,
/// or an Lp with p < 1), because all pruning rests on the triangle
/// inequality — so validate before indexing anything unfamiliar:
///
///   MVP_RETURN_NOT_OK(metric::CheckMetricAxioms(sample, my_metric));

namespace mvp::metric {

/// Checks symmetry, non-negativity, identity, and the triangle inequality
/// over all pairs/triples of `sample` (O(n^3) distance lookups over n^2
/// computed distances — keep the sample small, 20-50 objects). Returns
/// InvalidArgument naming the first violated axiom and the offending
/// indices. `tolerance` absorbs floating-point noise.
template <typename Object, MetricFor<Object> Metric>
Status CheckMetricAxioms(const std::vector<Object>& sample,
                         const Metric& metric, double tolerance = 1e-9) {
  const std::size_t n = sample.size();
  std::vector<double> dist(n * n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      dist[i * n + j] = metric(sample[i], sample[j]);
    }
  }
  char msg[128];
  for (std::size_t i = 0; i < n; ++i) {
    if (dist[i * n + i] != 0.0) {
      std::snprintf(msg, sizeof(msg), "identity violated: d(%zu,%zu) != 0", i,
                    i);
      return Status::InvalidArgument(msg);
    }
    for (std::size_t j = 0; j < n; ++j) {
      if (dist[i * n + j] < 0.0) {
        std::snprintf(msg, sizeof(msg),
                      "non-negativity violated at (%zu,%zu)", i, j);
        return Status::InvalidArgument(msg);
      }
      if (std::abs(dist[i * n + j] - dist[j * n + i]) > tolerance) {
        std::snprintf(msg, sizeof(msg), "symmetry violated at (%zu,%zu)", i,
                      j);
        return Status::InvalidArgument(msg);
      }
      for (std::size_t z = 0; z < n; ++z) {
        if (dist[i * n + j] > dist[i * n + z] + dist[z * n + j] + tolerance) {
          std::snprintf(msg, sizeof(msg),
                        "triangle inequality violated at (%zu,%zu) via %zu",
                        i, j, z);
          return Status::InvalidArgument(msg);
        }
      }
    }
  }
  return Status::OK();
}

}  // namespace mvp::metric

#endif  // MVPTREE_METRIC_AXIOMS_H_

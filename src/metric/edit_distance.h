#ifndef MVPTREE_METRIC_EDIT_DISTANCE_H_
#define MVPTREE_METRIC_EDIT_DISTANCE_H_

#include <string>

/// \file
/// String metrics for non-spatial domains.
///
/// The paper motivates distance-based indexing precisely because it works
/// "for domains where the data is non-spatial ... such as in the case of
/// text databases which generally use the edit distance (which is metric)"
/// (§3.1). Levenshtein distance (unit-cost insert/delete/substitute) is the
/// canonical example and is also the discrete integer metric assumed by the
/// Burkhard-Keller tree (§3.2, [BK73]).

namespace mvp::metric {

/// Unit-cost Levenshtein distance, O(|a|*|b|) time, O(min) space.
unsigned EditDistance(const std::string& a, const std::string& b);

/// Levenshtein with early exit: returns any value > bound as soon as the
/// true distance provably exceeds `bound` (Ukkonen banding). The returned
/// value equals the true distance whenever that distance <= bound.
unsigned BoundedEditDistance(const std::string& a, const std::string& b,
                             unsigned bound);

/// Metric functor over std::string (satisfies MetricFor<Levenshtein,
/// std::string>); distances are integers returned as double.
struct Levenshtein {
  double operator()(const std::string& a, const std::string& b) const {
    return static_cast<double>(EditDistance(a, b));
  }
};

/// Hamming distance over equal-length strings: number of differing
/// positions. Metric on the space of strings of one fixed length.
struct Hamming {
  double operator()(const std::string& a, const std::string& b) const;
};

}  // namespace mvp::metric

#endif  // MVPTREE_METRIC_EDIT_DISTANCE_H_

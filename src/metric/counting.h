#ifndef MVPTREE_METRIC_COUNTING_H_
#define MVPTREE_METRIC_COUNTING_H_

#include <cstdint>
#include <memory>
#include <utility>

/// \file
/// Distance-computation counting — the paper's cost model.
///
/// "Since the distance computations are very costly for high-dimensional
/// metric spaces, we use the number of distance computations as the cost
/// measure." (§5). Every experiment in bench/ wraps its metric in
/// CountingMetric and reports exact call counts.

namespace mvp::metric {

/// Shared mutable distance-call counter. Copies of a CountingMetric (indexes
/// store metrics by value) all increment the same counter.
class DistanceCounter {
 public:
  DistanceCounter() : count_(std::make_shared<std::uint64_t>(0)) {}

  std::uint64_t count() const { return *count_; }
  void Reset() { *count_ = 0; }
  void Increment() const { ++*count_; }

 private:
  std::shared_ptr<std::uint64_t> count_;
};

/// Wraps any metric, incrementing `counter` on every distance evaluation.
template <typename M>
class CountingMetric {
 public:
  CountingMetric(M inner, DistanceCounter counter)
      : inner_(std::move(inner)), counter_(std::move(counter)) {}

  template <typename O>
  double operator()(const O& a, const O& b) const {
    counter_.Increment();
    return inner_(a, b);
  }

  const M& inner() const { return inner_; }
  const DistanceCounter& counter() const { return counter_; }

 private:
  M inner_;
  DistanceCounter counter_;
};

/// Deduction-friendly factory.
template <typename M>
CountingMetric<M> MakeCounting(M inner, DistanceCounter counter) {
  return CountingMetric<M>(std::move(inner), std::move(counter));
}

}  // namespace mvp::metric

#endif  // MVPTREE_METRIC_COUNTING_H_

#ifndef MVPTREE_METRIC_COUNTING_H_
#define MVPTREE_METRIC_COUNTING_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <utility>

/// \file
/// Distance-computation counting — the paper's cost model.
///
/// "Since the distance computations are very costly for high-dimensional
/// metric spaces, we use the number of distance computations as the cost
/// measure." (§5). Every experiment in bench/ wraps its metric in
/// CountingMetric and reports exact call counts.
///
/// Two flavours: DistanceCounter/CountingMetric are single-threaded (one
/// plain increment, the benchmarks' default), while AtomicDistanceCounter/
/// AtomicCountingMetric may be shared freely across threads — the serving
/// layer (src/serve/) uses the atomic flavour for per-query and global
/// accounting when one index is searched from many threads at once.
///
/// Thread-safety analysis: AtomicDistanceCounter is a shared atomic with
/// relaxed increments — intentionally capability-free (it is a statistic,
/// not a synchronization point). DistanceCounter is single-threaded by
/// contract; the TSA build keeps both free of unannotated locking.

namespace mvp::metric {

/// Shared mutable distance-call counter. Copies of a CountingMetric (indexes
/// store metrics by value) all increment the same counter.
class DistanceCounter {
 public:
  DistanceCounter() : count_(std::make_shared<std::uint64_t>(0)) {}

  std::uint64_t count() const { return *count_; }
  void Reset() { *count_ = 0; }
  void Increment() const { ++*count_; }

 private:
  std::shared_ptr<std::uint64_t> count_;
};

/// Wraps any metric, incrementing `counter` on every distance evaluation.
template <typename M>
class CountingMetric {
 public:
  CountingMetric(M inner, DistanceCounter counter)
      : inner_(std::move(inner)), counter_(std::move(counter)) {}

  template <typename O>
  double operator()(const O& a, const O& b) const {
    counter_.Increment();
    return inner_(a, b);
  }

  const M& inner() const { return inner_; }
  const DistanceCounter& counter() const { return counter_; }

 private:
  M inner_;
  DistanceCounter counter_;
};

/// Deduction-friendly factory.
template <typename M>
CountingMetric<M> MakeCounting(M inner, DistanceCounter counter) {
  return CountingMetric<M>(std::move(inner), std::move(counter));
}

/// Thread-safe shared distance-call counter. Copies all address the same
/// atomic, so an index built with an AtomicCountingMetric can be searched
/// from any number of threads while the counter stays exact. Increments are
/// relaxed: the count is a statistic, not a synchronization point — read it
/// after joining the threads that produced it for an exact total.
class AtomicDistanceCounter {
 public:
  AtomicDistanceCounter()
      : count_(std::make_shared<std::atomic<std::uint64_t>>(0)) {}

  std::uint64_t count() const {
    return count_->load(std::memory_order_relaxed);
  }
  void Reset() { count_->store(0, std::memory_order_relaxed); }
  void Increment() const { count_->fetch_add(1, std::memory_order_relaxed); }
  void Add(std::uint64_t n) const {
    count_->fetch_add(n, std::memory_order_relaxed);
  }

 private:
  std::shared_ptr<std::atomic<std::uint64_t>> count_;
};

/// Thread-safe CountingMetric: wraps any metric, incrementing a shared
/// atomic counter on every distance evaluation.
template <typename M>
class AtomicCountingMetric {
 public:
  AtomicCountingMetric(M inner, AtomicDistanceCounter counter)
      : inner_(std::move(inner)), counter_(std::move(counter)) {}

  template <typename O>
  double operator()(const O& a, const O& b) const {
    counter_.Increment();
    return inner_(a, b);
  }

  const M& inner() const { return inner_; }
  const AtomicDistanceCounter& counter() const { return counter_; }

 private:
  M inner_;
  AtomicDistanceCounter counter_;
};

/// Deduction-friendly factory for the thread-safe flavour.
template <typename M>
AtomicCountingMetric<M> MakeAtomicCounting(M inner,
                                           AtomicDistanceCounter counter) {
  return AtomicCountingMetric<M>(std::move(inner), std::move(counter));
}

}  // namespace mvp::metric

#endif  // MVPTREE_METRIC_COUNTING_H_

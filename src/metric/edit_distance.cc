#include "metric/edit_distance.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "common/macros.h"

namespace mvp::metric {

unsigned EditDistance(const std::string& a, const std::string& b) {
  // Keep the shorter string in the DP row to bound memory at O(min(|a|,|b|)).
  const std::string& row_str = a.size() < b.size() ? a : b;
  const std::string& col_str = a.size() < b.size() ? b : a;
  const std::size_t n = row_str.size();

  std::vector<unsigned> row(n + 1);
  for (std::size_t j = 0; j <= n; ++j) row[j] = static_cast<unsigned>(j);

  for (std::size_t i = 1; i <= col_str.size(); ++i) {
    unsigned diag = row[0];  // DP[i-1][j-1]
    row[0] = static_cast<unsigned>(i);
    for (std::size_t j = 1; j <= n; ++j) {
      const unsigned up = row[j];  // DP[i-1][j]
      const unsigned substitute =
          diag + (col_str[i - 1] == row_str[j - 1] ? 0u : 1u);
      row[j] = std::min({row[j - 1] + 1, up + 1, substitute});
      diag = up;
    }
  }
  return row[n];
}

unsigned BoundedEditDistance(const std::string& a, const std::string& b,
                             unsigned bound) {
  const std::string& row_str = a.size() < b.size() ? a : b;
  const std::string& col_str = a.size() < b.size() ? b : a;
  const std::size_t n = row_str.size();
  const std::size_t m = col_str.size();

  // Lengths alone already decide it.
  if (m - n > bound) return bound + 1;

  constexpr unsigned kInf = std::numeric_limits<unsigned>::max() / 2;
  std::vector<unsigned> row(n + 1, kInf);
  for (std::size_t j = 0; j <= std::min<std::size_t>(n, bound); ++j) {
    row[j] = static_cast<unsigned>(j);
  }

  for (std::size_t i = 1; i <= m; ++i) {
    // Only cells with |i - j| <= bound can hold values <= bound.
    const std::size_t j_lo = i > bound ? i - bound : 1;
    const std::size_t j_hi = std::min(n, i + bound);
    unsigned diag = j_lo > 1 ? row[j_lo - 1] : row[0];
    unsigned row_min = kInf;
    if (j_lo == 1) {
      // Column 0 of this DP row: deleting i leading chars.
      row[0] = i <= bound ? static_cast<unsigned>(i) : kInf;
      row_min = row[0];
    } else {
      row[j_lo - 1] = kInf;  // outside the band now
    }
    for (std::size_t j = j_lo; j <= j_hi; ++j) {
      const unsigned up = row[j];
      const unsigned substitute =
          diag + (col_str[i - 1] == row_str[j - 1] ? 0u : 1u);
      const unsigned left = row[j - 1];
      row[j] = std::min({left + 1, up + 1, substitute});
      row_min = std::min(row_min, row[j]);
      diag = up;
    }
    if (j_hi < n) row[j_hi + 1] = kInf;  // right edge leaving the band
    if (row_min > bound) return bound + 1;
  }
  return row[n] <= bound ? row[n] : bound + 1;
}

double Hamming::operator()(const std::string& a, const std::string& b) const {
  MVP_DCHECK(a.size() == b.size());
  unsigned diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i) diff += a[i] != b[i] ? 1u : 0u;
  return static_cast<double>(diff);
}

}  // namespace mvp::metric

#ifndef MVPTREE_METRIC_METRIC_H_
#define MVPTREE_METRIC_METRIC_H_

#include <concepts>

/// \file
/// The metric-space contract every index in this library is built on.
///
/// Following the paper (§2), a metric distance function d must satisfy
///   i)   d(x,y) = d(y,x)                 (symmetry)
///   ii)  0 < d(x,y) < inf for x != y     (positivity)
///   iii) d(x,x) = 0                      (identity)
///   iv)  d(x,y) <= d(x,z) + d(z,y)       (triangle inequality)
/// and these are the ONLY properties the index structures may assume: no
/// coordinates, no geometry. Axioms are validated for every bundled metric by
/// the property tests in tests/metric_axioms_test.cc.

namespace mvp::metric {

/// A metric usable with objects of type O: a const-callable functor returning
/// a distance convertible to double. Copies of a metric must compute the same
/// function (indexes store metrics by value).
template <typename M, typename O>
concept MetricFor = std::copy_constructible<M> &&
    requires(const M& m, const O& a, const O& b) {
      { m(a, b) } -> std::convertible_to<double>;
    };

}  // namespace mvp::metric

#endif  // MVPTREE_METRIC_METRIC_H_

#ifndef MVPTREE_TRANSFORM_TRANSFORMS_H_
#define MVPTREE_TRANSFORM_TRANSFORMS_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/macros.h"
#include "dataset/image.h"
#include "metric/lp.h"

/// \file
/// Concrete distance-preserving (contractive) transforms for FilterIndex,
/// modeled on §3.1's examples. Each transform documents the metric pair it
/// contracts; tests/transform_test.cc proves each claim on sampled data via
/// CheckContractive, and the non-examples (prefixes of uncorrelated
/// vectors) are measured in bench/ext_transform.

namespace mvp::transform {

/// Keeps the first `dims` coordinates of a vector. Contractive for any Lp:
/// dropping non-negative terms only shrinks the norm. This is the shape of
/// DFT/Karhunen-Loeve prefix filters — effective only when the retained
/// coordinates carry most of the variance (the paper's §3.1 caveat: "not
/// effective ... where the values at each dimension are uncorrelated").
class PrefixTransform {
 public:
  explicit PrefixTransform(std::size_t dims) : dims_(dims) {
    MVP_DCHECK(dims > 0);
  }

  metric::Vector operator()(const metric::Vector& v) const {
    MVP_DCHECK(v.size() >= dims_);
    return metric::Vector(v.begin(),
                          v.begin() + static_cast<std::ptrdiff_t>(dims_));
  }

  std::size_t dims() const { return dims_; }

 private:
  std::size_t dims_;
};

/// The discrete Haar/DFT-style energy-compacting analogue for sequences:
/// averages of adjacent blocks, scaled so the transform contracts L2.
/// For block size b, the map v -> (sum of block)/sqrt(b) satisfies
/// ||t(a)-t(b)||_2 <= ||a-b||_2 (Cauchy-Schwarz per block), and compacts
/// smooth (correlated) signals far better than a raw prefix.
class BlockMeanTransform {
 public:
  explicit BlockMeanTransform(std::size_t block) : block_(block) {
    MVP_DCHECK(block > 0);
  }

  metric::Vector operator()(const metric::Vector& v) const {
    const std::size_t out_dims = (v.size() + block_ - 1) / block_;
    metric::Vector out(out_dims, 0.0);
    for (std::size_t i = 0; i < v.size(); ++i) out[i / block_] += v[i];
    const double scale = 1.0 / std::sqrt(static_cast<double>(block_));
    for (double& x : out) x *= scale;
    return out;
  }

  std::size_t block() const { return block_; }

 private:
  std::size_t block_;
};

/// QBIC-style single-value image filter (§3.1's worked example used average
/// color; for gray-level images this is average intensity). Produces a
/// 1-dimensional vector scaled such that plain L1 on it contracts the
/// normalized pixel-wise ImageL1: |sum(a) - sum(b)| <= sum|a - b|.
class AverageIntensityTransform {
 public:
  metric::Vector operator()(const dataset::Image& img) const {
    std::uint64_t sum = 0;
    for (const std::uint8_t px : img.pixels) sum += px;
    return metric::Vector{static_cast<double>(sum) /
                          dataset::ImageL1Normalizer(img.pixels.size())};
  }
};

/// Multi-dimensional image filter: per-tile intensity sums over a
/// `tiles x tiles` grid, scaled to contract the normalized ImageL1. The
/// higher-fidelity successor to AverageIntensityTransform (QBIC's average
/// color generalizes the same way), trading filter dimensionality for
/// selectivity.
class TileSumTransform {
 public:
  explicit TileSumTransform(std::size_t tiles) : tiles_(tiles) {
    MVP_DCHECK(tiles > 0);
  }

  metric::Vector operator()(const dataset::Image& img) const {
    metric::Vector out(tiles_ * tiles_, 0.0);
    const double norm = dataset::ImageL1Normalizer(img.pixels.size());
    for (std::size_t y = 0; y < img.height; ++y) {
      const std::size_t ty = y * tiles_ / img.height;
      for (std::size_t x = 0; x < img.width; ++x) {
        const std::size_t tx = x * tiles_ / img.width;
        out[ty * tiles_ + tx] +=
            static_cast<double>(img.pixels[y * img.width + x]) / norm;
      }
    }
    return out;
  }

  std::size_t tiles() const { return tiles_; }

 private:
  std::size_t tiles_;
};

}  // namespace mvp::transform

#endif  // MVPTREE_TRANSFORM_TRANSFORMS_H_

#ifndef MVPTREE_TRANSFORM_FILTER_INDEX_H_
#define MVPTREE_TRANSFORM_FILTER_INDEX_H_

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "common/query.h"
#include "common/status.h"
#include "core/mvp_tree.h"
#include "metric/metric.h"

/// \file
/// Distance-preserving transformations (§3.1 of the paper) as a two-stage
/// filter index.
///
/// "A distance preserving transformation is a mapping from a
/// high-dimensional domain to a lower-dimensional domain where the distances
/// between objects before the transformation (in the actual space) are
/// greater than or equal to the distances after the transformation. ...
/// Similarity queries ... are answered by first using the index on the
/// [transformed objects] as the major filtering step, and then refining the
/// result by actual computations of [the real] distances." (QBIC's average
/// color is the paper's worked example.)
///
/// FilterIndex runs that pipeline over any contractive transform: an
/// mvp-tree indexes the transformed (cheap) objects; a range query first
/// collects every object whose transformed distance is within r — a
/// superset of the true answer, by the contraction property — then verifies
/// each candidate with one real distance computation. The paper's §3.1
/// caveat also holds here and is measurable with bench/ext_transform: a
/// transform that preserves little distance information (e.g. coordinate
/// prefixes of uncorrelated uniform vectors) filters almost nothing.

namespace mvp::transform {

/// A transform usable by FilterIndex: maps Object to a low-cost LowObject.
/// CONTRACT: for the metric pair (Metric, LowMetric) used with it,
///   low_metric(t(a), t(b)) <= metric(a, b)   for all a, b.
/// Validate unfamiliar transforms with CheckContractive before indexing.
template <typename T, typename Object>
concept TransformFor = std::copy_constructible<T> &&
    requires(const T& t, const Object& obj) {
      { t(obj) };
    };

/// Per-query cost breakdown of the two-stage pipeline. The whole point of
/// the §3.1 technique is that `high_distance_computations` (expensive) is a
/// small fraction of n while `low_distance_computations` (cheap) do the
/// bulk of the work.
struct FilterSearchStats {
  std::uint64_t low_distance_computations = 0;   ///< transformed-space
  std::uint64_t high_distance_computations = 0;  ///< actual metric
  std::uint64_t candidates = 0;                  ///< survived the filter
};

/// Verifies the contraction property of (transform, low_metric) against
/// (metric) on all pairs of a sample; returns InvalidArgument naming the
/// first violating pair. This is the property the correctness of
/// FilterIndex::RangeSearch rests on.
template <typename Object, metric::MetricFor<Object> Metric,
          TransformFor<Object> Transform, typename LowMetric>
Status CheckContractive(const std::vector<Object>& sample,
                        const Metric& metric, const Transform& transform,
                        const LowMetric& low_metric,
                        double tolerance = 1e-9) {
  using LowObject = decltype(transform(sample[0]));
  std::vector<LowObject> low;
  low.reserve(sample.size());
  for (const Object& obj : sample) low.push_back(transform(obj));
  for (std::size_t i = 0; i < sample.size(); ++i) {
    for (std::size_t j = i + 1; j < sample.size(); ++j) {
      const double high = metric(sample[i], sample[j]);
      const double lo = low_metric(low[i], low[j]);
      if (lo > high + tolerance) {
        char msg[128];
        std::snprintf(msg, sizeof(msg),
                      "transform not contractive at pair (%zu,%zu): "
                      "%.6f > %.6f",
                      i, j, lo, high);
        return Status::InvalidArgument(msg);
      }
    }
  }
  return Status::OK();
}

/// The §3.1 two-stage pipeline: an mvp-tree over transformed objects as the
/// major filtering step, exact verification as the refinement step.
template <typename Object, metric::MetricFor<Object> Metric,
          TransformFor<Object> Transform,
          typename LowMetric>
class FilterIndex {
 public:
  using LowObject = std::decay_t<decltype(std::declval<const Transform&>()(
      std::declval<const Object&>()))>;
  using LowTree = core::MvpTree<LowObject, LowMetric>;

  struct Options {
    /// Construction options for the low-dimensional mvp-tree.
    typename LowTree::Options tree;
  };

  /// Builds the filter index. The contraction property is NOT validated
  /// here (it is a semantic contract; use CheckContractive on a sample).
  static Result<FilterIndex> Build(std::vector<Object> objects, Metric metric,
                                   Transform transform, LowMetric low_metric,
                                   const Options& options = Options{}) {
    std::vector<LowObject> low;
    low.reserve(objects.size());
    for (const Object& obj : objects) low.push_back(transform(obj));
    auto tree =
        LowTree::Build(std::move(low), std::move(low_metric), options.tree);
    if (!tree.ok()) return tree.status();
    return FilterIndex(std::move(objects), std::move(metric),
                       std::move(transform), std::move(tree).ValueOrDie());
  }

  /// All objects within `radius` of `query` under the REAL metric. Exact:
  /// the transformed-space query (same radius — distances only shrink)
  /// over-approximates the answer set and every candidate is verified.
  std::vector<Neighbor> RangeSearch(const Object& query, double radius,
                                    FilterSearchStats* stats = nullptr) const {
    MVP_DCHECK(radius >= 0);
    SearchStats low_stats;
    const auto candidates =
        low_tree_.RangeSearch(transform_(query), radius, &low_stats);
    std::vector<Neighbor> result;
    for (const Neighbor& candidate : candidates) {
      const double d = metric_(query, objects_[candidate.id]);
      if (d <= radius) result.push_back(Neighbor{candidate.id, d});
    }
    std::sort(result.begin(), result.end(), NeighborLess);
    if (stats != nullptr) {
      stats->low_distance_computations += low_stats.distance_computations;
      stats->high_distance_computations += candidates.size();
      stats->candidates += candidates.size();
    }
    return result;
  }

  /// k-NN under the real metric: fetch candidates from the low space in
  /// expanding batches; the low-space distance of the next unseen candidate
  /// lower-bounds its real distance, giving a sound stopping rule.
  std::vector<Neighbor> KnnSearch(const Object& query, std::size_t k,
                                  FilterSearchStats* stats = nullptr) const {
    if (k == 0 || objects_.empty()) return {};
    const LowObject low_query = transform_(query);
    // Fetch low-space neighbors in one call with a generous batch, then
    // expand if the stopping rule has not fired. Simple doubling schedule.
    std::size_t fetch = std::min(objects_.size(), std::max<std::size_t>(4 * k, 16));
    for (;;) {
      SearchStats low_stats;
      const auto candidates = low_tree_.KnnSearch(low_query, fetch, &low_stats);
      std::vector<Neighbor> verified;
      verified.reserve(candidates.size());
      std::uint64_t high = 0;
      std::vector<Neighbor> heap;
      bool done = false;
      for (std::size_t i = 0; i < candidates.size(); ++i) {
        // Stopping rule: if the k-th best real distance so far is below the
        // low-space distance of every remaining candidate, no remaining
        // object can improve the answer (real >= low).
        if (heap.size() == k &&
            heap.front().distance < candidates[i].distance) {
          done = true;
          break;
        }
        const double d = metric_(query, objects_[candidates[i].id]);
        ++high;
        Offer(heap, k, Neighbor{candidates[i].id, d});
      }
      if (stats != nullptr) {
        stats->low_distance_computations += low_stats.distance_computations;
        stats->high_distance_computations += high;
        stats->candidates += candidates.size();
      }
      if (done || fetch >= objects_.size()) {
        std::sort(heap.begin(), heap.end(), NeighborLess);
        return heap;
      }
      fetch = std::min(objects_.size(), fetch * 2);
    }
  }

  std::size_t size() const { return objects_.size(); }
  const Object& object(std::size_t id) const {
    MVP_DCHECK(id < objects_.size());
    return objects_[id];
  }
  const LowTree& low_tree() const { return low_tree_; }

 private:
  FilterIndex(std::vector<Object> objects, Metric metric, Transform transform,
              LowTree low_tree)
      : objects_(std::move(objects)),
        metric_(std::move(metric)),
        transform_(std::move(transform)),
        low_tree_(std::move(low_tree)) {}

  static void Offer(std::vector<Neighbor>& heap, std::size_t k, Neighbor n) {
    if (heap.size() < k) {
      heap.push_back(n);
      std::push_heap(heap.begin(), heap.end(), NeighborLess);
    } else if (NeighborLess(n, heap.front())) {
      std::pop_heap(heap.begin(), heap.end(), NeighborLess);
      heap.back() = n;
      std::push_heap(heap.begin(), heap.end(), NeighborLess);
    }
  }

  std::vector<Object> objects_;
  Metric metric_;
  Transform transform_;
  LowTree low_tree_;
};

}  // namespace mvp::transform

#endif  // MVPTREE_TRANSFORM_FILTER_INDEX_H_

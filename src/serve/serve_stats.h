#ifndef MVPTREE_SERVE_SERVE_STATS_H_
#define MVPTREE_SERVE_SERVE_STATS_H_

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>

#include "common/status.h"
#include "metric/counting.h"

/// \file
/// Thread-safe serving metrics: atomic counters plus a lock-free latency
/// histogram with percentile extraction.
///
/// Everything here is wait-free and write-optimized: the hot path (one
/// query completion) is a handful of relaxed atomic adds, so recording
/// never serializes the worker threads it measures. Reads (Snapshot,
/// Quantile) are taken while writers run; they see a consistent-enough
/// picture for monitoring, and an exact one once the producing threads are
/// joined — which is how the benchmarks and tests use them.
///
/// The histogram uses fixed power-of-two buckets over nanoseconds: bucket
/// i counts latencies in [2^(i-1), 2^i) ns, giving ~constant relative
/// error (one octave) from 1ns to ~78 hours in 48 counters and a bucket
/// index that is one `bit_width` instruction. Quantiles report the upper
/// edge of the bucket containing the requested rank — a pessimistic bound,
/// never an underestimate.
///
/// Thread-safety analysis (common/thread_annotations.h): this file is
/// deliberately lock-free — every shared field is a std::atomic and there
/// is no capability to annotate. The TSA build checks it for accidental
/// reintroduction of unannotated locking; the repo lint forbids raw
/// std::mutex members here.

namespace mvp::serve {

/// Lock-free fixed-bucket latency histogram.
class LatencyHistogram {
 public:
  static constexpr std::size_t kNumBuckets = 48;

  void Record(std::chrono::nanoseconds latency) {
    const std::uint64_t ns =
        latency.count() < 0 ? 0 : static_cast<std::uint64_t>(latency.count());
    buckets_[BucketIndex(ns)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    // Monotone CAS keeps max exact even under contention.
    std::uint64_t seen = max_ns_.load(std::memory_order_relaxed);
    while (ns > seen &&
           !max_ns_.compare_exchange_weak(seen, ns,
                                          std::memory_order_relaxed)) {
    }
  }

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }

  std::chrono::nanoseconds max() const {
    return std::chrono::nanoseconds(
        static_cast<std::int64_t>(max_ns_.load(std::memory_order_relaxed)));
  }

  /// Upper bound of the bucket holding the q-quantile (0 < q <= 1) of the
  /// recorded latencies; zero when nothing was recorded.
  std::chrono::nanoseconds Quantile(double q) const {
    const std::uint64_t n = count();
    if (n == 0) return std::chrono::nanoseconds(0);
    std::uint64_t rank = static_cast<std::uint64_t>(q * static_cast<double>(n));
    if (rank < 1) rank = 1;
    if (rank > n) rank = n;
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < kNumBuckets; ++i) {
      cumulative += buckets_[i].load(std::memory_order_relaxed);
      if (cumulative >= rank) return BucketUpperBound(i);
    }
    return BucketUpperBound(kNumBuckets - 1);
  }

  std::uint64_t bucket_count(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  /// Upper edge (exclusive) of bucket i, as a duration.
  static std::chrono::nanoseconds BucketUpperBound(std::size_t i) {
    return std::chrono::nanoseconds(
        i + 1 >= 64 ? std::int64_t{1} << 62
                    : static_cast<std::int64_t>(std::uint64_t{1} << (i + 1)));
  }

 private:
  static std::size_t BucketIndex(std::uint64_t ns) {
    const std::size_t width = static_cast<std::size_t>(std::bit_width(ns));
    return width >= kNumBuckets ? kNumBuckets - 1 : width;
  }

  std::array<std::atomic<std::uint64_t>, kNumBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> max_ns_{0};
};

/// Point-in-time view of a ServeStats (plain values, safe to copy around).
/// The four outcome counters are disjoint and sum to `queries`:
/// ok / partial / deadline_exceeded / shed (see ServeStats::RecordQuery).
struct ServeStatsSnapshot {
  std::uint64_t queries = 0;             ///< completed, any outcome
  std::uint64_t ok = 0;                  ///< complete answer
  std::uint64_t partial = 0;             ///< degraded: partial answer served
  std::uint64_t deadline_exceeded = 0;   ///< missed deadline, nothing served
  std::uint64_t shed = 0;                ///< refused by admission control
  std::uint64_t distance_computations = 0;
  std::uint64_t results_returned = 0;    ///< neighbors across ok+partial
  std::chrono::nanoseconds p50{0};
  std::chrono::nanoseconds p95{0};
  std::chrono::nanoseconds p99{0};
  std::chrono::nanoseconds max{0};
  /// Latency distribution of the degraded queries alone (partial +
  /// deadline_exceeded + shed) — the tail the SLO conversation is about.
  std::chrono::nanoseconds degraded_p50{0};
  std::chrono::nanoseconds degraded_p99{0};
  std::chrono::nanoseconds degraded_max{0};
};

/// Thread-safe counters + latency histogram for a serving endpoint. One
/// instance is shared by every worker; all methods may race freely.
class ServeStats {
 public:
  /// Folds one completed query in. Classification (disjoint):
  ///  * `status.ok() && !partial`        -> ok
  ///  * `partial`                        -> partial (degraded but served;
  ///                                        status is DeadlineExceeded)
  ///  * ResourceExhausted                -> shed (admission refused it)
  ///  * any other failure                -> deadline_exceeded
  /// Degraded queries (everything but ok) are additionally recorded into a
  /// separate latency histogram so the tail of degraded work is visible
  /// next to the overall distribution.
  void RecordQuery(const Status& status, bool partial,
                   std::chrono::nanoseconds latency,
                   std::uint64_t distance_computations,
                   std::uint64_t results_returned) {
    if (status.ok() && !partial) {
      ok_.fetch_add(1, std::memory_order_relaxed);
      results_.fetch_add(results_returned, std::memory_order_relaxed);
    } else {
      if (partial) {
        partial_.fetch_add(1, std::memory_order_relaxed);
        results_.fetch_add(results_returned, std::memory_order_relaxed);
      } else if (status.code() == StatusCode::kResourceExhausted) {
        shed_.fetch_add(1, std::memory_order_relaxed);
      } else {
        deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
      }
      degraded_latency_.Record(latency);
    }
    distances_.Add(distance_computations);
    latency_.Record(latency);
  }

  const LatencyHistogram& latency() const { return latency_; }
  const LatencyHistogram& degraded_latency() const {
    return degraded_latency_;
  }
  const metric::AtomicDistanceCounter& distance_counter() const {
    return distances_;
  }

  ServeStatsSnapshot Snapshot() const {
    ServeStatsSnapshot snap;
    snap.ok = ok_.load(std::memory_order_relaxed);
    snap.partial = partial_.load(std::memory_order_relaxed);
    snap.deadline_exceeded =
        deadline_exceeded_.load(std::memory_order_relaxed);
    snap.shed = shed_.load(std::memory_order_relaxed);
    snap.queries =
        snap.ok + snap.partial + snap.deadline_exceeded + snap.shed;
    snap.distance_computations = distances_.count();
    snap.results_returned = results_.load(std::memory_order_relaxed);
    snap.p50 = latency_.Quantile(0.50);
    snap.p95 = latency_.Quantile(0.95);
    snap.p99 = latency_.Quantile(0.99);
    snap.max = latency_.max();
    snap.degraded_p50 = degraded_latency_.Quantile(0.50);
    snap.degraded_p99 = degraded_latency_.Quantile(0.99);
    snap.degraded_max = degraded_latency_.max();
    return snap;
  }

 private:
  std::atomic<std::uint64_t> ok_{0};
  std::atomic<std::uint64_t> partial_{0};
  std::atomic<std::uint64_t> deadline_exceeded_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> results_{0};
  metric::AtomicDistanceCounter distances_;
  LatencyHistogram latency_;
  LatencyHistogram degraded_latency_;
};

}  // namespace mvp::serve

#endif  // MVPTREE_SERVE_SERVE_STATS_H_

#ifndef MVPTREE_SERVE_THREAD_POOL_H_
#define MVPTREE_SERVE_THREAD_POOL_H_

#include <atomic>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "common/thread_annotations.h"

/// \file
/// Fixed-size worker pool for the serving layer.
///
/// Design points, in the order they matter for a query-serving engine:
///
///  * Bounded queue with backpressure. `Submit` blocks while the queue is
///    at capacity; `TrySubmit` refuses instead. A serving layer without a
///    bound turns overload into unbounded memory growth — with one, it
///    turns into latency, which deadlines then shed.
///  * Work stealing. Each worker owns a deque; tasks are distributed round
///    robin, a worker pops from the back of its own deque (LIFO, warm
///    caches) and steals from the front of a sibling's (FIFO, oldest —
///    fair) when its own is empty. The deques share one mutex: tasks here
///    are whole queries or shard searches (microseconds to milliseconds),
///    so scheduling is far off the critical path and a single lock keeps
///    the pool easy to reason about under TSAN.
///  * Helping. `RunOne` lets any thread — typically one blocked waiting
///    for tasks it just submitted — execute a pending task in place. This
///    is what makes nested fan-out (a query task spawning per-shard tasks
///    on the same pool) deadlock-free: waiters drain the queue instead of
///    holding a worker hostage.
///  * Clean shutdown. `Shutdown` (also run by the destructor) drains every
///    queued task, then joins the workers. Work accepted is work done.
///  * Exceptions propagate. `Submit` returns a std::future; a throwing
///    task stores its exception there. `TrySubmit` tasks must not throw.

namespace mvp::serve {

class ThreadPool {
 public:
  struct Options {
    /// Fixed number of worker threads (>= 1).
    std::size_t num_threads = 4;
    /// Maximum number of queued (not yet running) tasks before Submit
    /// blocks and TrySubmit refuses.
    std::size_t queue_capacity = 4096;
  };

  explicit ThreadPool(std::size_t num_threads)
      : ThreadPool(Options{num_threads, 4096}) {}

  explicit ThreadPool(const Options& options) : options_(options) {
    MVP_DCHECK(options_.num_threads >= 1);
    MVP_DCHECK(options_.queue_capacity >= 1);
    queues_.resize(options_.num_threads);
    workers_.reserve(options_.num_threads);
    for (std::size_t w = 0; w < options_.num_threads; ++w) {
      workers_.emplace_back([this, w] { WorkerLoop(w); });
    }
  }

  ~ThreadPool() { Shutdown(); }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Schedules `fn` and returns a future for its result (or exception).
  /// Blocks while the queue is full — this is the pool's backpressure.
  /// Calling it after (or racing with) Shutdown is safe: the task is
  /// refused and the returned future reports std::future_errc::
  /// broken_promise instead of enqueueing work no worker will run.
  template <typename F>
  auto Submit(F&& fn) MVP_EXCLUDES(mu_)
      -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    {
      MutexLock lock(&mu_);
      while (pending_ >= options_.queue_capacity && !stopping_) {
        space_cv_.Wait(mu_);
      }
      // A stopping pool has (or will have) no workers; enqueueing would
      // strand the task ("work accepted is work done" only covers work
      // accepted before Shutdown). Dropping the packaged_task breaks its
      // promise, which is exactly what the future should observe.
      if (stopping_) return future;
      EnqueueLocked([task] { (*task)(); });
    }
    work_cv_.NotifyOne();
    return future;
  }

  /// Schedules `fn` (which must not throw) unless the queue is full or the
  /// pool is shutting down; returns whether it was accepted.
  bool TrySubmit(std::function<void()> fn) MVP_EXCLUDES(mu_) {
    {
      MutexLock lock(&mu_);
      if (stopping_ || pending_ >= options_.queue_capacity) return false;
      EnqueueLocked(std::move(fn));
    }
    work_cv_.NotifyOne();
    return true;
  }

  /// Runs one pending task on the calling thread, if any; returns whether
  /// one was run. Threads waiting for submitted work should call this in
  /// their wait loop so that nested submissions cannot deadlock.
  bool RunOne() MVP_EXCLUDES(mu_) {
    std::function<void()> task;
    {
      MutexLock lock(&mu_);
      if (pending_ == 0) return false;
      task = PopLocked(/*preferred=*/0);
      --pending_;
      ++running_;
    }
    space_cv_.NotifyOne();
    task();
    FinishTask();
    return true;
  }

  /// Blocks until no task is queued or running. Quiescence, not a fence:
  /// tasks submitted after WaitIdle returns are not covered.
  void WaitIdle() MVP_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    while (pending_ != 0 || running_ != 0) idle_cv_.Wait(mu_);
  }

  /// Drains all queued tasks, then joins the workers. Idempotent. Called
  /// by the destructor. Submissions racing with or following it are safe:
  /// TrySubmit returns false, Submit returns a broken-promise future.
  void Shutdown() MVP_EXCLUDES(mu_) {
    {
      MutexLock lock(&mu_);
      if (stopping_) return;
      stopping_ = true;
    }
    work_cv_.NotifyAll();
    space_cv_.NotifyAll();
    for (auto& worker : workers_) worker.join();
    workers_.clear();
  }

  std::size_t num_threads() const { return options_.num_threads; }

  /// Queued (not yet running) tasks; a snapshot, stale by the time you act
  /// on it.
  std::size_t pending() const MVP_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return pending_;
  }

 private:
  void EnqueueLocked(std::function<void()> task) MVP_REQUIRES(mu_) {
    queues_[next_queue_].push_back(std::move(task));
    next_queue_ = (next_queue_ + 1) % queues_.size();
    ++pending_;
  }

  /// Pops from the preferred worker's deque (back = most recently pushed),
  /// else steals the oldest task from the first non-empty sibling.
  /// Precondition: pending_ > 0, mu_ held.
  std::function<void()> PopLocked(std::size_t preferred) MVP_REQUIRES(mu_) {
    if (!queues_[preferred].empty()) {
      std::function<void()> task = std::move(queues_[preferred].back());
      queues_[preferred].pop_back();
      return task;
    }
    for (std::size_t i = 0; i < queues_.size(); ++i) {
      const std::size_t victim = (preferred + 1 + i) % queues_.size();
      if (queues_[victim].empty()) continue;
      std::function<void()> task = std::move(queues_[victim].front());
      queues_[victim].pop_front();
      return task;
    }
    MVP_DCHECK(false);  // pending_ > 0 guarantees a non-empty deque
    return {};
  }

  void FinishTask() MVP_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    --running_;
    if (pending_ == 0 && running_ == 0) idle_cv_.NotifyAll();
  }

  void WorkerLoop(std::size_t worker_index) MVP_EXCLUDES(mu_) {
    for (;;) {
      std::function<void()> task;
      {
        MutexLock lock(&mu_);
        while (!stopping_ && pending_ == 0) work_cv_.Wait(mu_);
        if (pending_ == 0) {
          if (stopping_) return;  // drained: work accepted is work done
          continue;
        }
        task = PopLocked(worker_index);
        --pending_;
        ++running_;
      }
      space_cv_.NotifyOne();
      task();
      FinishTask();
    }
  }

  const Options options_;
  mutable Mutex mu_;
  CondVar work_cv_;   // workers: a task or shutdown arrived
  CondVar space_cv_;  // submitters: queue has room
  CondVar idle_cv_;   // WaitIdle: nothing queued or running
  /// One deque per worker; all of them share mu_.
  std::vector<std::deque<std::function<void()>>> queues_ MVP_GUARDED_BY(mu_);
  std::vector<std::thread> workers_;  // written by ctor/Shutdown only
  std::size_t pending_ MVP_GUARDED_BY(mu_) = 0;  // queued across all deques
  std::size_t running_ MVP_GUARDED_BY(mu_) = 0;  // currently executing
  std::size_t next_queue_ MVP_GUARDED_BY(mu_) = 0;
  bool stopping_ MVP_GUARDED_BY(mu_) = false;
};

/// Runs fn(0..count-1) across the pool, the calling thread running what
/// the queue refuses and helping via RunOne while it waits, so this is
/// safe to call from inside a pool task (nested fan-out cannot deadlock:
/// waiters drain the queue). `fn` must not throw. A task's final access
/// to the captured state is the release increment of `done`, so once the
/// acquire load observes all offloaded tasks the stack state is free.
/// Used by ShardedMvpIndex (parallel build / fan-out search) and the
/// snapshot loader (parallel shard deserialization).
template <typename Fn>
void ParallelFor(ThreadPool& pool, std::size_t count, Fn&& fn) {
  if (count == 0) return;
  std::atomic<std::size_t> done{0};
  std::size_t offloaded = 0;
  for (std::size_t i = 1; i < count; ++i) {
    const bool queued = pool.TrySubmit([&fn, &done, i] {
      fn(i);
      done.fetch_add(1, std::memory_order_release);
    });
    if (queued) {
      ++offloaded;
    } else {
      fn(i);
    }
  }
  fn(0);
  while (done.load(std::memory_order_acquire) < offloaded) {
    if (!pool.RunOne()) std::this_thread::yield();
  }
}

}  // namespace mvp::serve

#endif  // MVPTREE_SERVE_THREAD_POOL_H_

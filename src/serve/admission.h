#ifndef MVPTREE_SERVE_ADMISSION_H_
#define MVPTREE_SERVE_ADMISSION_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

#include "common/status.h"
#include "common/thread_annotations.h"

/// \file
/// Admission control: shed excess load instead of absorbing it.
///
/// Backpressure alone (the executor's run-it-yourself fallback when the
/// pool queue is full) keeps the process alive under overload, but it makes
/// *every* query slower: work queues until deadlines are already blown, then
/// burns distance computations on answers nobody can use. An
/// AdmissionController bounds the work in flight and estimates how long a
/// new query would sit in the queue; queries that would not fit are refused
/// up front with Status::ResourceExhausted — a cheap, immediate, explicit
/// "try another replica / later" signal, which is what a load balancer
/// actually wants. This is the standard serving-system discipline (cf.
/// SEDA / gRPC admission control): fail fast at the front door, keep the
/// pipeline inside operating at its capacity.
///
/// The wait estimate is queueing theory at its cheapest: with W workers, an
/// EWMA of per-query service time S, and Q queries already admitted, a new
/// arrival waits about Q x S / W. If that exceeds the query's own deadline
/// budget (it would be dead on arrival) or the configured cap, it is shed.

namespace mvp::serve {

class AdmissionController {
 public:
  struct Options {
    /// Hard cap on admitted-but-not-completed queries.
    std::size_t max_in_flight = 1024;
    /// Worker count draining the queue, for the wait estimate. Set it to
    /// the ThreadPool size.
    std::size_t num_workers = 4;
    /// Cap on the estimated queue wait; a new query whose estimated wait
    /// exceeds this is shed. Default: no cap (shed on max_in_flight and
    /// dead-on-arrival only).
    std::chrono::nanoseconds max_queue_wait = std::chrono::nanoseconds::max();
    /// EWMA smoothing factor for service time (higher adapts faster).
    double ewma_alpha = 0.2;
    /// Service-time estimate used before any completion has been observed.
    std::chrono::nanoseconds initial_service_estimate =
        std::chrono::microseconds(100);
  };

  AdmissionController();  // default Options; defined below the class

  explicit AdmissionController(const Options& options)
      : options_(options),
        ewma_service_ns_(
            static_cast<double>(options.initial_service_estimate.count())) {}

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// Decides admission for one query whose remaining deadline budget is
  /// `timeout`. OK: the query is admitted and the caller MUST call
  /// Complete() exactly once when it finishes (however it finishes).
  /// ResourceExhausted: the query is shed; do not run it, do not call
  /// Complete().
  Status TryAdmit(std::chrono::nanoseconds timeout =
                      std::chrono::nanoseconds::max()) MVP_EXCLUDES(mu_) {
    std::size_t in_flight = in_flight_.load(std::memory_order_relaxed);
    for (;;) {
      if (in_flight >= options_.max_in_flight) {
        shed_.fetch_add(1, std::memory_order_relaxed);
        return Status::ResourceExhausted(
            "admission: in-flight limit reached (" +
            std::to_string(options_.max_in_flight) + ")");
      }
      if (in_flight_.compare_exchange_weak(in_flight, in_flight + 1,
                                           std::memory_order_acq_rel)) {
        break;
      }
    }
    // `in_flight` queries are ahead of this one; W workers drain them at
    // one EWMA service time each.
    const auto wait = EstimateWait(in_flight);
    if (wait > options_.max_queue_wait || wait > timeout) {
      in_flight_.fetch_sub(1, std::memory_order_acq_rel);
      shed_.fetch_add(1, std::memory_order_relaxed);
      return Status::ResourceExhausted(
          "admission: estimated queue wait " +
          std::to_string(
              std::chrono::duration_cast<std::chrono::microseconds>(wait)
                  .count()) +
          "us exceeds the query budget");
    }
    admitted_.fetch_add(1, std::memory_order_relaxed);
    return Status::OK();
  }

  /// Reports the completion of an admitted query that took `service_time`
  /// of actual work (queue time excluded — the estimate multiplies it back
  /// in).
  void Complete(std::chrono::nanoseconds service_time) MVP_EXCLUDES(mu_) {
    in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    MutexLock lock(&mu_);
    ewma_service_ns_ +=
        options_.ewma_alpha *
        (static_cast<double>(service_time.count()) - ewma_service_ns_);
  }

  /// Estimated queue wait a query admitted right now would see.
  std::chrono::nanoseconds EstimatedQueueWait() const MVP_EXCLUDES(mu_) {
    return EstimateWait(in_flight_.load(std::memory_order_relaxed));
  }

  std::size_t in_flight() const {
    return in_flight_.load(std::memory_order_relaxed);
  }
  std::uint64_t admitted() const {
    return admitted_.load(std::memory_order_relaxed);
  }
  std::uint64_t shed() const { return shed_.load(std::memory_order_relaxed); }

  const Options& options() const { return options_; }

 private:
  std::chrono::nanoseconds EstimateWait(std::size_t queued_ahead) const
      MVP_EXCLUDES(mu_) {
    double service_ns;
    {
      MutexLock lock(&mu_);
      service_ns = ewma_service_ns_;
    }
    const double workers =
        static_cast<double>(options_.num_workers > 0 ? options_.num_workers
                                                     : 1);
    const double wait_ns =
        static_cast<double>(queued_ahead) * service_ns / workers;
    if (wait_ns >=
        static_cast<double>(std::chrono::nanoseconds::max().count())) {
      return std::chrono::nanoseconds::max();
    }
    return std::chrono::nanoseconds(static_cast<std::int64_t>(wait_ns));
  }

  const Options options_;
  std::atomic<std::size_t> in_flight_{0};
  std::atomic<std::uint64_t> admitted_{0};
  std::atomic<std::uint64_t> shed_{0};
  mutable Mutex mu_;
  double ewma_service_ns_ MVP_GUARDED_BY(mu_);
};

// Out of line: Options{} needs the enclosing class complete before its
// default member initializers are usable (GCC is strict about this for
// defaulted arguments and in-class delegation).
inline AdmissionController::AdmissionController()
    : AdmissionController(Options{}) {}

}  // namespace mvp::serve

#endif  // MVPTREE_SERVE_ADMISSION_H_

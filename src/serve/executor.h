#ifndef MVPTREE_SERVE_EXECUTOR_H_
#define MVPTREE_SERVE_EXECUTOR_H_

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <utility>
#include <vector>

#include "common/query.h"
#include "common/status.h"
#include "metric/counting.h"
#include "serve/admission.h"
#include "serve/cancel.h"
#include "serve/serve_stats.h"
#include "serve/thread_pool.h"

/// \file
/// Batch query executor — the serving layer's front door.
///
/// `RunBatch` takes a vector of queries, each with an optional deadline
/// budget, runs them across a ThreadPool, and returns one `QueryOutcome`
/// per query in input order. Semantics:
///
///  * Deadlines are absolute from the moment the batch starts: a query's
///    deadline is batch-start + its timeout, so time spent queued behind
///    other work counts against it — exactly what load shedding needs. A
///    query whose deadline has already passed when a worker picks it up is
///    shed without touching the index (a zero timeout never runs); one
///    whose deadline expires mid-search is cancelled cooperatively at the
///    next distance computation (see serve/cancel.h).
///  * Graceful degradation: a cancelled query does not discard the work it
///    already paid for. For indexes exposing the `*SearchInto` harvest
///    interface (ShardedMvpIndex, MvpTree), the neighbors found before the
///    cut are returned with `QueryOutcome::partial == true` and status
///    DeadlineExceeded. Range partials are a true subset of the full
///    answer (every hit passed the exact d <= r test); k-NN partials are
///    the best candidates among the points evaluated so far. A per-query
///    `max_distance_computations` budget degrades the same way.
///  * Load shedding: with `ExecutorOptions::admission` set, each query asks
///    the AdmissionController before being submitted; refused queries get
///    Status::ResourceExhausted immediately — no queueing, no index work —
///    instead of blocking the submitter unboundedly.
///  * Backpressure: at most `ThreadPool::Options::queue_capacity` query
///    tasks are queued at once; the submitting thread runs queries itself
///    while the queue is full, so submission can never outrun execution.
///  * Accounting: each outcome carries wall latency (batch start to
///    completion, queue time included) and the exact number of distance
///    computations the query performed, aggregated across every thread
///    that worked on it. Outcomes are optionally folded into a shared
///    `ServeStats` (ok / partial / deadline_exceeded / shed).
///
/// Mid-search cancellation requires the index's distance evaluations to be
/// cancellation points, which ShardedMvpIndex guarantees (its shards are
/// built over CancelChecked metrics). Any index with the standard
/// RangeSearch/KnnSearch signatures works — but an index without
/// cancellation points only honours deadlines at query start, not
/// mid-search, and one without the `*SearchInto` interface reports
/// cancellation with `partial == false` and no results.
///
/// Thread-safety analysis: RunBatch owns all cross-thread state either
/// per-task (each worker touches only its own QueryOutcome slot) or as a
/// std::atomic completion counter, so there is no lock and no capability
/// to annotate; the locked components it drives (ThreadPool,
/// AdmissionController) carry the annotations instead.

namespace mvp::serve {

/// Work item for RunBatch.
template <typename Object>
struct BatchQuery {
  enum class Kind { kRange, kKnn };

  Kind kind = Kind::kRange;
  Object object{};
  double radius = 0.0;   ///< kRange: closed-ball radius
  std::size_t k = 0;     ///< kKnn: neighbor count
  /// Deadline budget measured from batch start; default: none. Zero means
  /// the query is shed unconditionally.
  std::chrono::nanoseconds timeout = std::chrono::nanoseconds::max();
  /// Cap on metric evaluations for this query, across all threads working
  /// on it (0 = unlimited). Exceeding it degrades to a partial answer,
  /// like a deadline — the cost-bounded flavour of the same knob.
  std::uint64_t max_distance_computations = 0;
};

/// Per-query result of RunBatch.
struct QueryOutcome {
  /// OK (complete answer), DeadlineExceeded (deadline or distance budget
  /// hit; `neighbors` holds a partial answer iff `partial`), or
  /// ResourceExhausted (shed by admission control before running).
  Status status;
  /// True when `neighbors` is a degraded-but-served partial answer from a
  /// cancelled search. Never true on OK or ResourceExhausted.
  bool partial = false;
  /// Neighbors, sorted by (distance, id). Complete on OK; the harvest on
  /// partial; empty otherwise.
  std::vector<Neighbor> neighbors;
  /// Batch start to query completion, queueing included.
  std::chrono::nanoseconds latency{0};
  /// Exact metric evaluations this query performed, across all threads.
  std::uint64_t distance_computations = 0;
  /// Full per-query search statistics as reported by the index (nodes
  /// visited, leaf filtering, distance computations). Zero on shed/DOA
  /// queries that never touched the index. `search.distance_computations`
  /// is reconciled with the cancellation counter, so it always equals
  /// `distance_computations` above — the network layer ships this struct
  /// so remote callers see exactly what an in-process caller would.
  SearchStats search;
};

struct ExecutorOptions {
  /// Also fan each query out across its index's shards (ShardedMvpIndex
  /// only). Lowers single-query latency; for batch throughput the
  /// query-level parallelism is usually enough and cheaper.
  bool parallel_shards = false;
  /// When set, every query must be admitted before it runs; refusals come
  /// back as ResourceExhausted outcomes. The controller is the caller's —
  /// typically shared across many batches so in-flight bounds hold
  /// process-wide.
  AdmissionController* admission = nullptr;
};

namespace internal {

inline ServeClock::time_point DeadlineFrom(ServeClock::time_point start,
                                           std::chrono::nanoseconds timeout) {
  if (timeout >= ServeClock::time_point::max() - start) return kNoDeadline;
  return start + timeout;
}

/// Batch-primes the root vantage-point distances for every query of the
/// batch when the index supports it (ShardedMvpIndex::PrimeBatch over flat
/// shards of a kernel-capable metric). One many-queries-one-vantage-point
/// SIMD sweep per shard root replaces per-query metric calls; the primed
/// values are bit-identical and charged to stats/budgets at consumption, so
/// outcomes match unprimed execution exactly. Returns the index's prime
/// vector, or int{0} when the index has no PrimeBatch — PrimeAt below maps
/// either onto the per-query prime pointer.
template <typename Index, typename Object>
auto PrimeIfSupported(const Index& index,
                      const std::vector<BatchQuery<Object>>& queries) {
  if constexpr (requires {
                  index.PrimeBatch(std::vector<const Object*>{});
                }) {
    std::vector<const Object*> objects;
    if (queries.size() >= 2) {  // a single query gains nothing from batching
      objects.reserve(queries.size());
      for (const BatchQuery<Object>& q : queries) {
        objects.push_back(&q.object);
      }
    }
    return index.PrimeBatch(objects);
  } else {
    return 0;
  }
}

inline const void* PrimeAt(int, std::size_t) { return nullptr; }
template <typename P>
const P* PrimeAt(const std::vector<P>& primes, std::size_t i) {
  if (i >= primes.size()) return nullptr;
  return &primes[i];
}

/// Invokes the right search, preferring the `*SearchInto` harvest
/// interface (results survive a cancellation unwind in `*out`) and passing
/// the shard pool through when the index accepts one (ShardedMvpIndex).
/// Sets `*harvestable` before any index work, so the catch handler knows
/// whether `*out` is meaningful. Results land in `*out` unsorted.
///
/// `prime` is the query's batch-primed root distances (PrimeIfSupported /
/// PrimeAt): forwarded when the index's `*SearchInto` accepts it, ignored
/// otherwise. A null prime of the right type simply runs unprimed.
template <typename Index, typename Object, typename Prime>
void SearchInto(const Index& index, const BatchQuery<Object>& query,
                std::vector<Neighbor>* out, SearchStats* stats,
                ThreadPool* shard_pool, bool* harvestable, Prime prime) {
  using Kind = typename BatchQuery<Object>::Kind;
  if constexpr (requires {
                  index.RangeSearchInto(query.object, query.radius, out,
                                        stats, shard_pool, prime);
                }) {
    *harvestable = true;
    if (query.kind == Kind::kRange) {
      index.RangeSearchInto(query.object, query.radius, out, stats,
                            shard_pool, prime);
    } else {
      index.KnnSearchInto(query.object, query.k, out, stats, shard_pool,
                          prime);
    }
  } else if constexpr (requires {
                         index.RangeSearchInto(query.object, query.radius,
                                               out, stats, shard_pool);
                       }) {
    *harvestable = true;
    if (query.kind == Kind::kRange) {
      index.RangeSearchInto(query.object, query.radius, out, stats,
                            shard_pool);
    } else {
      index.KnnSearchInto(query.object, query.k, out, stats, shard_pool);
    }
  } else if constexpr (requires {
                         index.RangeSearchInto(query.object, query.radius,
                                               out, stats);
                       }) {
    *harvestable = true;
    if (query.kind == Kind::kRange) {
      index.RangeSearchInto(query.object, query.radius, out, stats);
    } else {
      index.KnnSearchInto(query.object, query.k, out, stats);
    }
  } else if constexpr (requires {
                         index.RangeSearch(query.object, query.radius, stats,
                                           shard_pool);
                       }) {
    *harvestable = false;
    *out = query.kind == Kind::kRange
               ? index.RangeSearch(query.object, query.radius, stats,
                                   shard_pool)
               : index.KnnSearch(query.object, query.k, stats, shard_pool);
  } else {
    *harvestable = false;
    *out = query.kind == Kind::kRange
               ? index.RangeSearch(query.object, query.radius, stats)
               : index.KnnSearch(query.object, query.k, stats);
  }
}

}  // namespace internal

/// Executes `queries` against `index`, in parallel on `pool` (serially on
/// the calling thread when `pool` is null — the single-threaded baseline).
/// Returns outcomes in input order; folds them into `stats` when given.
template <typename Index, typename Object>
std::vector<QueryOutcome> RunBatch(const Index& index,
                                   const std::vector<BatchQuery<Object>>& queries,
                                   ThreadPool* pool,
                                   ServeStats* stats = nullptr,
                                   const ExecutorOptions& options = {}) {
  std::vector<QueryOutcome> outcomes(queries.size());
  const ServeClock::time_point start = ServeClock::now();
  ThreadPool* shard_pool = options.parallel_shards ? pool : nullptr;
  // Batch-shaped work the queries share: one SIMD sweep per shard root
  // vantage point primes every query's root distances up front (a no-op for
  // indexes/batches that can't use it). Bit-identical and stats-identical
  // to unprimed execution.
  const auto primes = internal::PrimeIfSupported(index, queries);

  auto finish = [&](std::size_t i) {
    QueryOutcome& out = outcomes[i];
    out.latency = ServeClock::now() - start;
    if (stats != nullptr) {
      stats->RecordQuery(out.status, out.partial, out.latency,
                         out.distance_computations, out.neighbors.size());
    }
  };

  auto run_one = [&](std::size_t i) {
    const BatchQuery<Object>& query = queries[i];
    QueryOutcome& out = outcomes[i];
    const ServeClock::time_point deadline =
        internal::DeadlineFrom(start, query.timeout);
    const std::uint64_t budget = query.max_distance_computations;
    metric::AtomicDistanceCounter counter;
    CancelToken token;
    SearchStats search_stats;
    bool harvestable = false;
    const ServeClock::time_point work_start = ServeClock::now();
    if (work_start >= deadline) {
      out.status = Status::DeadlineExceeded("deadline passed before search");
    } else {
      try {
        CancelScope scope(&counter, &token, deadline, budget);
        internal::SearchInto(index, query, &out.neighbors, &search_stats,
                             shard_pool, &harvestable,
                             internal::PrimeAt(primes, i));
        out.status = Status::OK();
      } catch (const CancelledError&) {
        // The scope (and any shard scopes) flushed into `counter` during
        // the unwind, so the budget-vs-deadline attribution below sees the
        // final count.
        out.partial = harvestable;
        if (!harvestable) out.neighbors.clear();
        if (budget > 0 && counter.count() >= budget &&
            ServeClock::now() < deadline) {
          out.status =
              Status::DeadlineExceeded("distance budget exhausted mid-search");
        } else {
          out.status = Status::DeadlineExceeded("deadline expired mid-search");
        }
      }
      if (harvestable) {
        // Harvested hits arrive unsorted (and k-NN as a per-shard union);
        // normalize to the library-wide presentation order.
        std::sort(out.neighbors.begin(), out.neighbors.end(), NeighborLess);
        if (query.kind == BatchQuery<Object>::Kind::kKnn &&
            out.neighbors.size() > query.k) {
          out.neighbors.resize(query.k);
        }
      }
    }
    // Indexes without cancellation points report through SearchStats
    // instead of the counter; on the success path of a CancelChecked index
    // the two agree exactly.
    out.distance_computations =
        std::max(counter.count(), search_stats.distance_computations);
    out.search = search_stats;
    out.search.distance_computations = out.distance_computations;
    if (options.admission != nullptr) {
      options.admission->Complete(ServeClock::now() - work_start);
    }
    finish(i);
  };

  // Admission (when configured) happens at submit time: a refused query
  // never touches the pool or the index, and its outcome is final here.
  auto admit = [&](std::size_t i) {
    if (options.admission == nullptr) return true;
    Status admitted = options.admission->TryAdmit(queries[i].timeout);
    if (admitted.ok()) return true;
    outcomes[i].status = std::move(admitted);
    finish(i);
    return false;
  };

  if (pool == nullptr) {
    for (std::size_t i = 0; i < queries.size(); ++i) {
      if (admit(i)) run_one(i);
    }
    return outcomes;
  }

  std::atomic<std::size_t> done{0};
  std::size_t offloaded = 0;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    if (!admit(i)) continue;
    const bool queued = pool->TrySubmit([&run_one, &done, i] {
      run_one(i);
      done.fetch_add(1, std::memory_order_release);
    });
    if (queued) {
      ++offloaded;
    } else {
      // Queue full: backpressure. The submitter absorbs the query itself,
      // which both sheds queue pressure and keeps submission from racing
      // ahead of execution.
      run_one(i);
    }
  }
  while (done.load(std::memory_order_acquire) < offloaded) {
    if (!pool->RunOne()) std::this_thread::yield();
  }
  return outcomes;
}

}  // namespace mvp::serve

#endif  // MVPTREE_SERVE_EXECUTOR_H_

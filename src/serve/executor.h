#ifndef MVPTREE_SERVE_EXECUTOR_H_
#define MVPTREE_SERVE_EXECUTOR_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <utility>
#include <vector>

#include "common/query.h"
#include "common/status.h"
#include "metric/counting.h"
#include "serve/cancel.h"
#include "serve/serve_stats.h"
#include "serve/thread_pool.h"

/// \file
/// Batch query executor — the serving layer's front door.
///
/// `RunBatch` takes a vector of queries, each with an optional deadline
/// budget, runs them across a ThreadPool, and returns one `QueryOutcome`
/// per query in input order. Semantics:
///
///  * Deadlines are absolute from the moment the batch starts: a query's
///    deadline is batch-start + its timeout, so time spent queued behind
///    other work counts against it — exactly what load shedding needs. A
///    query whose deadline has already passed when a worker picks it up is
///    shed without touching the index (a zero timeout never runs); one
///    whose deadline expires mid-search is cancelled cooperatively at the
///    next distance computation (see serve/cancel.h) and reports
///    DeadlineExceeded with no partial results.
///  * Backpressure: at most `ThreadPool::Options::queue_capacity` query
///    tasks are queued at once; the submitting thread runs queries itself
///    while the queue is full, so submission can never outrun execution.
///  * Accounting: each outcome carries wall latency (batch start to
///    completion, queue time included) and the exact number of distance
///    computations the query performed, aggregated across every thread
///    that worked on it. Outcomes are optionally folded into a shared
///    `ServeStats`.
///
/// Mid-search cancellation requires the index's distance evaluations to be
/// cancellation points, which ShardedMvpIndex guarantees (its shards are
/// built over CancelChecked metrics). Any index with the standard
/// RangeSearch/KnnSearch signatures works — a plain MvpTree too — but an
/// index without cancellation points only honours deadlines at query
/// start, not mid-search.

namespace mvp::serve {

/// Work item for RunBatch.
template <typename Object>
struct BatchQuery {
  enum class Kind { kRange, kKnn };

  Kind kind = Kind::kRange;
  Object object{};
  double radius = 0.0;   ///< kRange: closed-ball radius
  std::size_t k = 0;     ///< kKnn: neighbor count
  /// Deadline budget measured from batch start; default: none. Zero means
  /// the query is shed unconditionally.
  std::chrono::nanoseconds timeout = std::chrono::nanoseconds::max();
};

/// Per-query result of RunBatch.
struct QueryOutcome {
  /// OK, or DeadlineExceeded when the query was shed or cancelled.
  Status status;
  /// Neighbors (empty on DeadlineExceeded — no partial results).
  std::vector<Neighbor> neighbors;
  /// Batch start to query completion, queueing included.
  std::chrono::nanoseconds latency{0};
  /// Exact metric evaluations this query performed, across all threads.
  std::uint64_t distance_computations = 0;
};

struct ExecutorOptions {
  /// Also fan each query out across its index's shards (ShardedMvpIndex
  /// only). Lowers single-query latency; for batch throughput the
  /// query-level parallelism is usually enough and cheaper.
  bool parallel_shards = false;
};

namespace internal {

inline ServeClock::time_point DeadlineFrom(ServeClock::time_point start,
                                           std::chrono::nanoseconds timeout) {
  if (timeout >= ServeClock::time_point::max() - start) return kNoDeadline;
  return start + timeout;
}

/// Invokes the right search; passes the shard pool through when the index
/// accepts one (ShardedMvpIndex), with `nullptr` meaning serial shards.
template <typename Index, typename Object>
std::vector<Neighbor> Dispatch(const Index& index,
                               const BatchQuery<Object>& query,
                               SearchStats* stats, ThreadPool* shard_pool) {
  if constexpr (requires {
                  index.RangeSearch(query.object, query.radius, stats,
                                    shard_pool);
                }) {
    return query.kind == BatchQuery<Object>::Kind::kRange
               ? index.RangeSearch(query.object, query.radius, stats,
                                   shard_pool)
               : index.KnnSearch(query.object, query.k, stats, shard_pool);
  } else {
    return query.kind == BatchQuery<Object>::Kind::kRange
               ? index.RangeSearch(query.object, query.radius, stats)
               : index.KnnSearch(query.object, query.k, stats);
  }
}

}  // namespace internal

/// Executes `queries` against `index`, in parallel on `pool` (serially on
/// the calling thread when `pool` is null — the single-threaded baseline).
/// Returns outcomes in input order; folds them into `stats` when given.
template <typename Index, typename Object>
std::vector<QueryOutcome> RunBatch(const Index& index,
                                   const std::vector<BatchQuery<Object>>& queries,
                                   ThreadPool* pool,
                                   ServeStats* stats = nullptr,
                                   const ExecutorOptions& options = {}) {
  std::vector<QueryOutcome> outcomes(queries.size());
  const ServeClock::time_point start = ServeClock::now();
  ThreadPool* shard_pool = options.parallel_shards ? pool : nullptr;

  auto run_one = [&](std::size_t i) {
    const BatchQuery<Object>& query = queries[i];
    QueryOutcome& out = outcomes[i];
    const ServeClock::time_point deadline =
        internal::DeadlineFrom(start, query.timeout);
    metric::AtomicDistanceCounter counter;
    CancelToken token;
    SearchStats search_stats;
    if (ServeClock::now() >= deadline) {
      out.status = Status::DeadlineExceeded("deadline passed before search");
    } else {
      try {
        CancelScope scope(&counter, &token, deadline);
        out.neighbors =
            internal::Dispatch(index, query, &search_stats, shard_pool);
        out.status = Status::OK();
      } catch (const CancelledError&) {
        out.status = Status::DeadlineExceeded("deadline expired mid-search");
        out.neighbors.clear();
      }
    }
    // The scope (and any shard scopes) flushed into `counter`; indexes
    // without cancellation points report through SearchStats instead. On
    // the success path of a CancelChecked index the two agree exactly.
    out.distance_computations =
        std::max(counter.count(), search_stats.distance_computations);
    out.latency = ServeClock::now() - start;
    if (stats != nullptr) {
      stats->RecordQuery(out.status.ok(), out.latency,
                         out.distance_computations, out.neighbors.size());
    }
  };

  if (pool == nullptr) {
    for (std::size_t i = 0; i < queries.size(); ++i) run_one(i);
    return outcomes;
  }

  std::atomic<std::size_t> done{0};
  std::size_t offloaded = 0;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const bool queued = pool->TrySubmit([&run_one, &done, i] {
      run_one(i);
      done.fetch_add(1, std::memory_order_release);
    });
    if (queued) {
      ++offloaded;
    } else {
      // Queue full: backpressure. The submitter absorbs the query itself,
      // which both sheds queue pressure and keeps submission from racing
      // ahead of execution.
      run_one(i);
    }
  }
  while (done.load(std::memory_order_acquire) < offloaded) {
    if (!pool->RunOne()) std::this_thread::yield();
  }
  return outcomes;
}

}  // namespace mvp::serve

#endif  // MVPTREE_SERVE_EXECUTOR_H_

#ifndef MVPTREE_SERVE_CANCEL_H_
#define MVPTREE_SERVE_CANCEL_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <exception>
#include <utility>

#include "metric/counting.h"

/// \file
/// Cooperative cancellation for searches in flight.
///
/// The index structures in this library are recursive template code with no
/// natural preemption point — except one: every unit of work they do is a
/// metric evaluation (the paper's cost measure). The serving layer therefore
/// injects its cancellation checks exactly there. `CancelChecked<M>` wraps a
/// metric so that each distance computation first consults the calling
/// thread's active `CancelScope`; when the scope's token has been cancelled
/// or its deadline has passed, the evaluation throws `CancelledError`, which
/// unwinds the search and is caught by the executor (never leaks to user
/// code). A thread with no active scope pays one thread-local load per
/// distance computation and can never be interrupted.
///
/// The scope doubles as the serving layer's per-query distance accounting:
/// it counts the evaluations made on its thread (plain increments — the
/// scope is thread-local by construction) and flushes the total into an
/// `metric::AtomicDistanceCounter` on destruction, so a query fanned out
/// over several pool threads still gets one exact per-query count even when
/// a deadline aborts some shards mid-search.
///
/// Thread-safety analysis: lock-free by design. CancelToken is a single
/// atomic flag; CancelScope's Frame is thread-local (never shared), so
/// neither carries a capability. The TSA build verifies no unannotated
/// lock sneaks in.

namespace mvp::serve {

using ServeClock = std::chrono::steady_clock;

/// Sentinel for "no deadline".
inline constexpr ServeClock::time_point kNoDeadline =
    ServeClock::time_point::max();

/// One-shot cancellation flag, shared between the thread that sets it and
/// the threads that poll it.
class CancelToken {
 public:
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Thrown by a cancellation point once its scope is cancelled or past its
/// deadline. Internal to the serving layer: the executor converts it into a
/// DeadlineExceeded status.
class CancelledError : public std::exception {
 public:
  const char* what() const noexcept override {
    return "search cancelled (deadline expired)";
  }
};

/// Everything a child task needs to join its parent's cancellation domain.
struct CancelContext {
  const metric::AtomicDistanceCounter* counter = nullptr;
  CancelToken* token = nullptr;
  ServeClock::time_point deadline = kNoDeadline;
  /// Query-wide cap on distance computations (0 = unlimited), enforced
  /// against `counter` so it spans every thread working on the query.
  std::uint64_t budget = 0;
};

/// RAII frame installing a cancellation domain on the current thread.
/// Checking the wall clock on every distance computation would be costly,
/// so the deadline is consulted every kCheckStride evaluations (and on the
/// very first one, so even microsecond deadlines fire promptly); the token
/// flag — a relaxed atomic load — is consulted on every evaluation, which
/// is what makes a watchdog-free cross-thread cancel propagate fast.
class CancelScope {
 public:
  CancelScope(const metric::AtomicDistanceCounter* counter,
              CancelToken* token, ServeClock::time_point deadline,
              std::uint64_t budget = 0)
      : prev_(current_) {
    frame_.counter = counter;
    frame_.token = token;
    frame_.deadline = deadline;
    frame_.budget = budget;
    current_ = &frame_;
  }
  explicit CancelScope(const CancelContext& context)
      : CancelScope(context.counter, context.token, context.deadline,
                    context.budget) {}

  ~CancelScope() {
    if (frame_.counter != nullptr) {
      frame_.counter->Add(frame_.distances - frame_.flushed);
    }
    current_ = prev_;
  }

  CancelScope(const CancelScope&) = delete;
  CancelScope& operator=(const CancelScope&) = delete;

  /// Distance evaluations observed by this scope so far (this thread only).
  std::uint64_t distance_computations() const { return frame_.distances; }

  /// The innermost active scope's context, for handing to tasks spawned on
  /// other threads. Empty context when the thread has no active scope.
  static CancelContext Current() {
    const Frame* f = current_;
    if (f == nullptr) return CancelContext{};
    return CancelContext{f->counter, f->token, f->deadline, f->budget};
  }

  /// True once the active scope (if any) is cancelled, past its deadline,
  /// or — when a distance budget is set — the query's cross-thread
  /// evaluation count has reached it. Also counts one distance evaluation
  /// against the scope — call it exactly once per metric evaluation,
  /// before evaluating.
  ///
  /// Budget enforcement works by flushing this thread's tally into the
  /// query's shared counter at every stride boundary and comparing the
  /// counter (the query-wide total) against the budget, so the cap holds
  /// across fanned-out shard tasks with a slack of at most
  /// kCheckStride × threads evaluations.
  static bool ShouldStop() {
    Frame* f = current_;
    if (f == nullptr) return false;
    if (f->token != nullptr && f->token->cancelled()) return true;
    if (--f->countdown <= 0) {
      f->countdown = kCheckStride;
      if (f->deadline != kNoDeadline && ServeClock::now() >= f->deadline) {
        if (f->token != nullptr) f->token->Cancel();
        return true;
      }
      if (f->budget > 0 && f->counter != nullptr) {
        f->counter->Add(f->distances - f->flushed);
        f->flushed = f->distances;
        if (f->counter->count() >= f->budget) {
          if (f->token != nullptr) f->token->Cancel();
          return true;
        }
      }
    }
    ++f->distances;
    return false;
  }

 private:
  static constexpr int kCheckStride = 64;

  struct Frame {
    const metric::AtomicDistanceCounter* counter = nullptr;
    CancelToken* token = nullptr;
    ServeClock::time_point deadline = kNoDeadline;
    std::uint64_t budget = 0;  // 0 = unlimited
    int countdown = 1;  // check the clock on the first evaluation
    std::uint64_t distances = 0;
    std::uint64_t flushed = 0;  // prefix of `distances` already in `counter`
  };

  inline static thread_local Frame* current_ = nullptr;

  Frame frame_;
  Frame* prev_;
};

/// Throws CancelledError once the calling thread's scope is cancelled.
inline void CancellationPoint() {
  if (CancelScope::ShouldStop()) throw CancelledError();
}

/// Metric wrapper turning every distance computation into a cancellation
/// point (and a per-query accounting event). Forwards values untouched, so
/// results are bit-identical to the inner metric's.
template <typename M>
class CancelChecked {
 public:
  explicit CancelChecked(M inner) : inner_(std::move(inner)) {}

  // Two independent type parameters: the flat serving path evaluates
  // d(query, view-into-arena) without materializing the stored vector.
  template <typename A, typename B>
  double operator()(const A& a, const B& b) const {
    CancellationPoint();
    return inner_(a, b);
  }

  /// Charges one primed distance (already evaluated by a batch kernel,
  /// core::RootPrime) to the budget/cancellation accounting — exactly the
  /// bookkeeping operator() would have done, minus the metric call.
  void CountPrimed() const { CancellationPoint(); }

  const M& inner() const { return inner_; }

 private:
  M inner_;
};

}  // namespace mvp::serve

#endif  // MVPTREE_SERVE_CANCEL_H_

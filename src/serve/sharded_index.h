#ifndef MVPTREE_SERVE_SHARDED_INDEX_H_
#define MVPTREE_SERVE_SHARDED_INDEX_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "common/query.h"
#include "common/status.h"
#include "core/mvp_tree.h"
#include "core/search_shared.h"
#include "metric/kernels/kernels.h"
#include "metric/metric.h"
#include "serve/cancel.h"
#include "serve/thread_pool.h"
#include "snapshot/flat_tree.h"

/// \file
/// Sharded mvp-tree — the serving layer's unit of parallelism.
///
/// A single mvp-tree search is a sequential recursion; a machine serving
/// heavy traffic wants both queries-across-cores and, for latency-critical
/// single queries, one-query-across-cores. ShardedMvpIndex provides the
/// substrate for both: the dataset is partitioned round-robin over K
/// independent mvp-trees, built in parallel on a ThreadPool, and every
/// query fans out per-shard searches whose merged result is EXACTLY the
/// result one unsharded tree over the same data would return (same ids,
/// same distances — round-robin keeps global ids stable, and merging sorts
/// by the library-wide NeighborLess order). tests/sharded_index_test.cc
/// asserts this equivalence bit for bit.
///
/// Trade-off (docs/serving.md discusses it): K shards of n/K points do
/// slightly more total distance computations than one tree of n points —
/// each shard pays its own vantage-point evaluations — in exchange for a
/// build that scales near-linearly with cores and searches that can run
/// K-wide. Keep K near the core count, not higher.
///
/// Every shard tree is built over a CancelChecked metric, so any search —
/// serial or fanned out — is cancellable mid-flight by the executor's
/// deadline machinery at the granularity of one distance computation.
///
/// Each shard holds ONE of two representations behind the same search
/// interface: the heap tree (Build/Restore — owns its objects, supports
/// any Object type) or a flat mmap-native view (RestoreFlat — vector
/// datasets served directly out of a snapshot mapping with zero
/// deserialization; snapshot/flat_tree.h). Searches dispatch per shard and
/// return bit-identical results either way; flat shards recover global ids
/// arithmetically (local i in shard s of K is global i*K + s) instead of
/// from a stored map.
///
/// Thread-safety analysis: the index is immutable after Build/Restore and
/// searched concurrently without locks; per-query fan-out state is either
/// task-private or a std::atomic. No capabilities to annotate — the TSA
/// build (and the raw-mutex lint) keep it that way.

namespace mvp::serve {

template <typename Object, metric::MetricFor<Object> Metric>
class ShardedMvpIndex {
 public:
  using Tree = core::MvpTree<Object, CancelChecked<Metric>>;
  using FlatView = snapshot::flat::FlatTreeView<CancelChecked<Metric>>;

  /// Whether this instantiation can serve the flat representation: vector
  /// objects AND a metric that evaluates against a zero-copy VectorView
  /// (all bundled Lp metrics do; a metric restricted to owned vectors
  /// simply never sees flat shards).
  static constexpr bool kFlatCapable =
      std::is_same_v<Object, std::vector<double>> &&
      std::is_invocable_r_v<double, const Metric&, const Object&,
                            const snapshot::flat::VectorView&>;

  struct Options {
    /// Number of independent mvp-trees the data is partitioned over.
    /// 0 (the default) means adaptive: Build resolves it from the dataset
    /// size and the machine's core count via AdaptiveShardCount, so small
    /// datasets are not over-sharded (each shard pays its own vantage
    /// evaluations) and large ones use every core. Restore paths always
    /// receive the explicit count recorded in the snapshot manifest.
    std::size_t num_shards = 0;
    /// Construction parameters for every shard tree. Shard s is built with
    /// seed `tree.seed + s` so shards make decorrelated vantage choices.
    typename Tree::Options tree;
  };

  /// Shards worth using for `dataset_size` objects on `hardware_threads`
  /// cores: one shard per core, but never so many that a shard drops below
  /// kMinObjectsPerShard objects (the point where per-shard vantage
  /// overhead outweighs the parallelism; docs/serving.md discusses the
  /// trade-off), clamped to [1, kMaxAdaptiveShards]. `hardware_threads`
  /// defaults to the machine's; std::thread::hardware_concurrency may
  /// report 0, which is treated as a single core.
  static constexpr std::size_t kMinObjectsPerShard = 2048;
  static constexpr std::size_t kMaxAdaptiveShards = 64;
  static std::size_t AdaptiveShardCount(
      std::size_t dataset_size,
      std::size_t hardware_threads = std::thread::hardware_concurrency()) {
    const std::size_t cores = std::max<std::size_t>(hardware_threads, 1);
    const std::size_t by_size =
        std::max<std::size_t>(dataset_size / kMinObjectsPerShard, 1);
    return std::min({cores, by_size, kMaxAdaptiveShards});
  }

  /// The parameters the index was built with, flattened for recording in a
  /// snapshot manifest (and for validating a loaded snapshot against what
  /// its manifest claims — a mismatch means the bytes would deserialize
  /// into a structurally different index than the one saved).
  struct BuildParams {
    std::size_t num_shards = 0;
    int order = 0;
    int leaf_capacity = 0;
    int num_path_distances = 0;
    std::uint64_t seed = 0;  ///< base seed; shard s used seed + s
    bool store_exact_bounds = false;

    friend bool operator==(const BuildParams&, const BuildParams&) = default;
  };

  /// Precomputed root vantage-point distances for one query of a batch,
  /// one core::RootPrime per shard (PrimeBatch; consumed by the primed
  /// RangeSearchInto/KnnSearchInto overload parameter). Empty when the
  /// index could not be primed.
  struct QueryPrime {
    std::vector<core::RootPrime> shard;
  };

  /// Partitions `objects` round-robin over the shards (global id g lands in
  /// shard g % K) and builds the shard trees — in parallel on `pool` when
  /// one is given, serially otherwise. The result is identical either way.
  static Result<ShardedMvpIndex> Build(std::vector<Object> objects,
                                       Metric metric, const Options& options,
                                       ThreadPool* pool = nullptr) {
    ShardedMvpIndex index;
    index.options_ = options;
    if (index.options_.num_shards == 0) {
      index.options_.num_shards = AdaptiveShardCount(objects.size());
    }
    index.size_ = objects.size();
    const std::size_t k = index.options_.num_shards;

    std::vector<std::vector<Object>> parts(k);
    std::vector<std::vector<std::size_t>> ids(k);
    for (std::size_t s = 0; s < k; ++s) {
      parts[s].reserve(objects.size() / k + 1);
      ids[s].reserve(objects.size() / k + 1);
    }
    for (std::size_t g = 0; g < objects.size(); ++g) {
      parts[g % k].push_back(std::move(objects[g]));
      ids[g % k].push_back(g);
    }

    std::vector<std::optional<Result<Tree>>> built(k);
    auto build_shard = [&](std::size_t s) {
      typename Tree::Options tree_options = options.tree;
      tree_options.seed = options.tree.seed + s;
      built[s] = Tree::Build(std::move(parts[s]),
                             CancelChecked<Metric>(metric), tree_options);
    };
    if (pool == nullptr || k == 1) {
      for (std::size_t s = 0; s < k; ++s) build_shard(s);
    } else {
      ParallelFor(*pool, k, build_shard);
    }

    index.shards_.reserve(k);
    for (std::size_t s = 0; s < k; ++s) {
      if (!built[s]->ok()) return built[s]->status();
      index.shards_.push_back(std::make_unique<Shard>(
          Shard{std::move(*built[s]).ValueOrDie(), std::move(ids[s]),
                std::nullopt}));
    }
    return index;
  }

  /// All objects within `radius` of `query` (closed ball), sorted by
  /// distance then global id — exactly the unsharded MvpTree result. With
  /// a pool, shards are searched in parallel (the calling thread helps).
  std::vector<Neighbor> RangeSearch(const Object& query, double radius,
                                    SearchStats* stats = nullptr,
                                    ThreadPool* pool = nullptr) const {
    std::vector<Neighbor> merged;
    RangeSearchInto(query, radius, &merged, stats, pool);
    std::sort(merged.begin(), merged.end(), NeighborLess);
    return merged;
  }

  /// RangeSearch appending unsorted hits (global ids) into the caller-owned
  /// `*out`. On a mid-search cancellation, everything every shard had found
  /// by then — including shards that were interrupted — is harvested into
  /// `*out` and accounted into `*stats` before CancelledError is rethrown,
  /// so the executor can serve the partial answer. Every harvested hit is a
  /// true member of the full answer (it passed the exact d <= r test).
  void RangeSearchInto(const Object& query, double radius,
                       std::vector<Neighbor>* out,
                       SearchStats* stats = nullptr,
                       ThreadPool* pool = nullptr,
                       const QueryPrime* prime = nullptr) const {
    FanOutInto(
        [&](std::size_t s, const Shard& shard, std::vector<Neighbor>* sink,
            SearchStats* shard_stats) {
          if (shard.tree.has_value()) {
            shard.tree->RangeSearchInto(query, radius, sink, shard_stats);
          } else if constexpr (kFlatCapable) {
            shard.flat->RangeSearchInto(query, radius, sink, shard_stats,
                                        ShardPrime(prime, s));
          } else {
            MVP_DCHECK(false);  // flat shards need a flat-capable metric
          }
        },
        out, stats, pool);
  }

  /// The k nearest objects, sorted by distance then global id — exactly
  /// the unsharded result: each shard returns its own best k, and the best
  /// k of that union are the global best k.
  std::vector<Neighbor> KnnSearch(const Object& query, std::size_t k,
                                  SearchStats* stats = nullptr,
                                  ThreadPool* pool = nullptr) const {
    std::vector<Neighbor> merged;
    KnnSearchInto(query, k, &merged, stats, pool);
    std::sort(merged.begin(), merged.end(), NeighborLess);
    if (merged.size() > k) merged.resize(k);
    return merged;
  }

  /// KnnSearch appending each shard's (unsorted) candidate set into the
  /// caller-owned `*out` — up to k per shard, so the caller sorts and trims
  /// to k. On cancellation the harvested union holds the best candidates
  /// among the points evaluated so far (a valid degraded answer; not
  /// necessarily the true top-k), appended before CancelledError is
  /// rethrown.
  void KnnSearchInto(const Object& query, std::size_t k,
                     std::vector<Neighbor>* out, SearchStats* stats = nullptr,
                     ThreadPool* pool = nullptr,
                     const QueryPrime* prime = nullptr) const {
    FanOutInto(
        [&](std::size_t s, const Shard& shard, std::vector<Neighbor>* sink,
            SearchStats* shard_stats) {
          if (shard.tree.has_value()) {
            shard.tree->KnnSearchInto(query, k, sink, shard_stats);
          } else if constexpr (kFlatCapable) {
            shard.flat->KnnSearchInto(query, k, sink, shard_stats,
                                      ShardPrime(prime, s));
          } else {
            MVP_DCHECK(false);  // flat shards need a flat-capable metric
          }
        },
        out, stats, pool);
  }

  /// Precomputes, for each query of a co-arriving batch, its distance to
  /// every shard root's vantage points — the paper's cost model made batch-
  /// shaped: one many-queries-one-vantage-point kernel sweep per vantage
  /// point (metric/kernels/kernels.h) instead of one metric call per query.
  /// The primed values are bit-identical to what each search would compute
  /// itself, and consumers still charge SearchStats and the cancellation
  /// budget per primed distance, so batched and unbatched execution agree
  /// exactly. Returns empty when priming does not apply: heap serving, a
  /// metric without a batch kernel family, or no queries. Queries whose
  /// dimension mismatches a shard's stored vectors are left unprimed (the
  /// search then evaluates them itself, preserving whatever the metric does
  /// with them).
  std::vector<QueryPrime> PrimeBatch(
      const std::vector<const Object*>& queries) const {
    std::vector<QueryPrime> primes;
    if constexpr (kFlatCapable && metric::kernels::FamilyFor<Metric>::available) {
      if (!flat_serving() || queries.empty()) return primes;
      constexpr metric::kernels::Family kFamily =
          metric::kernels::FamilyFor<Metric>::family;
      const std::size_t num_shards = shards_.size();
      primes.resize(queries.size());
      for (auto& qp : primes) qp.shard.resize(num_shards);
      std::vector<const double*> qptrs;
      std::vector<std::size_t> qidx;
      std::vector<double> out1;
      std::vector<double> out2;
      for (std::size_t s = 0; s < num_shards; ++s) {
        const FlatView& view = *shards_[s]->flat;
        const double* vp1 = nullptr;
        const double* vp2 = nullptr;
        if (!view.RootVantagePoints(&vp1, &vp2)) continue;
        const std::size_t dim = view.dim();
        qptrs.clear();
        qidx.clear();
        for (std::size_t i = 0; i < queries.size(); ++i) {
          if (queries[i] != nullptr && queries[i]->size() == dim) {
            qptrs.push_back(queries[i]->data());
            qidx.push_back(i);
          }
        }
        if (qptrs.empty()) continue;
        out1.resize(qptrs.size());
        metric::kernels::ManyToOne(kFamily, qptrs.data(), qptrs.size(), vp1,
                                   dim, out1.data());
        if (vp2 != nullptr) {
          out2.resize(qptrs.size());
          metric::kernels::ManyToOne(kFamily, qptrs.data(), qptrs.size(), vp2,
                                     dim, out2.data());
        }
        for (std::size_t j = 0; j < qptrs.size(); ++j) {
          core::RootPrime& rp = primes[qidx[j]].shard[s];
          rp.d1 = out1[j];
          rp.has_d1 = true;
          if (vp2 != nullptr) {
            rp.d2 = out2[j];
            rp.has_d2 = true;
          }
        }
      }
    } else {
      (void)queries;  // not a status: unused in the non-flat-capable branch
    }
    return primes;
  }

  std::size_t size() const { return size_; }
  std::size_t num_shards() const { return shards_.size(); }
  const Options& options() const { return options_; }

  /// True when this index serves from flat arenas (RestoreFlat) rather than
  /// heap trees. Heap-only accessors below must not be called on it.
  bool flat_serving() const {
    return !shards_.empty() && shards_[0]->flat.has_value();
  }

  /// Heap representation only.
  const Tree& shard(std::size_t s) const {
    MVP_DCHECK(s < shards_.size() && shards_[s]->tree.has_value());
    return *shards_[s]->tree;
  }

  /// Flat representation only.
  const FlatView& flat_shard(std::size_t s) const {
    MVP_DCHECK(s < shards_.size() && shards_[s]->flat.has_value());
    return *shards_[s]->flat;
  }

  /// Shard s's local-id -> global-id map (round-robin: entry i is the
  /// global id of the i-th object handed to shard s's tree). The snapshot
  /// writer persists this next to each shard tree. Heap representation
  /// only — flat shards derive the mapping arithmetically.
  const std::vector<std::size_t>& shard_global_ids(std::size_t s) const {
    MVP_DCHECK(s < shards_.size() && shards_[s]->tree.has_value());
    return shards_[s]->global_ids;
  }

  BuildParams build_params() const {
    BuildParams params;
    params.num_shards = options_.num_shards;
    params.order = options_.tree.order;
    params.leaf_capacity = options_.tree.leaf_capacity;
    params.num_path_distances = options_.tree.num_path_distances;
    params.seed = options_.tree.seed;
    params.store_exact_bounds = options_.tree.store_exact_bounds;
    return params;
  }

  /// Reassembles an index from deserialized shard trees and their global-id
  /// maps (the inverse of per-shard serialization). Validates the
  /// round-robin partition invariant — shard s holds exactly the global
  /// ids congruent to s mod K, each id exactly once — so a snapshot whose
  /// chunks were reordered, dropped, or truncated is rejected as
  /// Corruption instead of producing an index with silently wrong ids.
  static Result<ShardedMvpIndex> Restore(
      const Options& options,
      std::vector<std::pair<Tree, std::vector<std::size_t>>> parts) {
    const std::size_t k = options.num_shards;
    if (k < 1 || parts.size() != k) {
      return Status::Corruption("shard count mismatches restore options");
    }
    std::size_t total = 0;
    for (const auto& [tree, ids] : parts) {
      if (tree.size() != ids.size()) {
        return Status::Corruption("shard tree size mismatches its id map");
      }
      total += ids.size();
    }
    std::vector<bool> seen(total, false);
    for (std::size_t s = 0; s < k; ++s) {
      for (const std::size_t id : parts[s].second) {
        if (id >= total || id % k != s || seen[id]) {
          return Status::Corruption("shard id map violates the round-robin "
                                    "partition invariant");
        }
        seen[id] = true;
      }
    }
    ShardedMvpIndex index;
    index.options_ = options;
    index.size_ = total;
    index.shards_.reserve(k);
    for (auto& [tree, ids] : parts) {
      index.shards_.push_back(std::make_unique<Shard>(
          Shard{std::move(tree), std::move(ids), std::nullopt}));
    }
    return index;
  }

  /// Reassembles an index serving directly out of flat arenas in a mapped
  /// snapshot — zero deserialization; the shards alias `arena_owner`'s
  /// bytes, which the index keeps alive. `views` is one validated
  /// FlatTreeView per shard, in shard order. Flat chunks carry no id map,
  /// so the round-robin invariant is enforced arithmetically: shard s of K
  /// must hold exactly ceil((total - s) / K) objects, and local id i maps
  /// to global id i*K + s (SaveFlat refuses indexes whose id maps are not
  /// in this canonical form).
  static Result<ShardedMvpIndex> RestoreFlat(
      const Options& options, std::size_t total, std::vector<FlatView> views,
      std::shared_ptr<const void> arena_owner) {
    const std::size_t k = options.num_shards;
    if (k < 1 || views.size() != k) {
      return Status::Corruption("shard count mismatches restore options");
    }
    for (std::size_t s = 0; s < k; ++s) {
      const std::size_t expected = total > s ? (total - s - 1) / k + 1 : 0;
      if (views[s].size() != expected) {
        return Status::Corruption(
            "flat shard size violates the round-robin partition invariant");
      }
      if (views[s].order() != options.tree.order ||
          views[s].leaf_capacity() != options.tree.leaf_capacity ||
          views[s].num_path_distances() != options.tree.num_path_distances ||
          views[s].store_exact_bounds() != options.tree.store_exact_bounds) {
        return Status::InvalidArgument(
            "flat shard build parameters mismatch restore options");
      }
    }
    ShardedMvpIndex index;
    index.options_ = options;
    index.size_ = total;
    index.arena_owner_ = std::move(arena_owner);
    index.shards_.reserve(k);
    for (auto& view : views) {
      index.shards_.push_back(std::make_unique<Shard>(
          Shard{std::nullopt, {}, std::move(view)}));
    }
    return index;
  }

  /// Aggregated structural statistics (construction distances sum over
  /// shards; height is the tallest shard's). Heap representation only —
  /// flat arenas do not record construction-time statistics.
  TreeStats Stats() const {
    TreeStats total;
    for (const auto& shard : shards_) {
      MVP_DCHECK(shard->tree.has_value());
      const TreeStats s = shard->tree->Stats();
      total.num_internal_nodes += s.num_internal_nodes;
      total.num_leaf_nodes += s.num_leaf_nodes;
      total.num_vantage_points += s.num_vantage_points;
      total.num_leaf_points += s.num_leaf_points;
      total.height = std::max(total.height, s.height);
      total.construction_distance_computations +=
          s.construction_distance_computations;
    }
    return total;
  }

 private:
  /// Exactly one representation is engaged: `tree` (heap, with its stored
  /// id map) or `flat` (arena view; global ids are arithmetic).
  struct Shard {
    std::optional<Tree> tree;
    std::vector<std::size_t> global_ids;  // heap only: local id -> global id
    std::optional<FlatView> flat;
  };

  ShardedMvpIndex() = default;

  /// Local -> global id for shard s under either representation.
  std::size_t GlobalId(std::size_t s, std::size_t local) const {
    const Shard& shard = *shards_[s];
    return shard.tree.has_value() ? shard.global_ids[local]
                                  : local * shards_.size() + s;
  }

  /// This query's primed root distances for shard s, or null when the batch
  /// was not primed (the search then computes them itself).
  static const core::RootPrime* ShardPrime(const QueryPrime* prime,
                                           std::size_t s) {
    if (prime == nullptr || s >= prime->shard.size()) return nullptr;
    return &prime->shard[s];
  }

  /// Runs `search` over every shard into a per-shard sink, translates local
  /// ids to global ids, and appends everything into `*out`. Parallel shard
  /// searches propagate the caller's cancellation context onto the worker
  /// threads, so a deadline set by the executor aborts all shards of the
  /// query, and every shard's distance evaluations are flushed into the
  /// query's counter.
  ///
  /// Cancellation (serial or parallel) is caught per shard: whatever every
  /// shard accumulated before being interrupted is still translated,
  /// appended and accounted — the partial-results harvest — and only then
  /// is CancelledError rethrown to signal the caller the answer is
  /// incomplete.
  template <typename SearchFn>
  void FanOutInto(const SearchFn& search, std::vector<Neighbor>* out,
                  SearchStats* stats, ThreadPool* pool) const {
    MVP_DCHECK(out != nullptr);
    const std::size_t k = shards_.size();
    std::vector<std::vector<Neighbor>> hits(k);
    std::vector<SearchStats> shard_stats(k);
    bool cancelled = false;

    if (pool == nullptr || k == 1) {
      try {
        for (std::size_t s = 0; s < k; ++s) {
          search(s, *shards_[s], &hits[s],
                 stats != nullptr ? &shard_stats[s] : nullptr);
        }
      } catch (const CancelledError&) {
        cancelled = true;
      }
    } else {
      const CancelContext context = CancelScope::Current();
      std::atomic<bool> flag{false};
      ParallelFor(*pool, k, [&](std::size_t s) {
        CancelScope scope(context);
        try {
          search(s, *shards_[s], &hits[s],
                 stats != nullptr ? &shard_stats[s] : nullptr);
        } catch (const CancelledError&) {
          flag.store(true, std::memory_order_relaxed);
        }
      });
      cancelled = flag.load(std::memory_order_relaxed);
    }

    std::size_t total = 0;
    for (const auto& h : hits) total += h.size();
    out->reserve(out->size() + total);
    for (std::size_t s = 0; s < k; ++s) {
      for (const Neighbor& n : hits[s]) {
        out->push_back(Neighbor{GlobalId(s, n.id), n.distance});
      }
      if (stats != nullptr) {
        stats->distance_computations += shard_stats[s].distance_computations;
        stats->nodes_visited += shard_stats[s].nodes_visited;
        stats->leaf_points_seen += shard_stats[s].leaf_points_seen;
        stats->leaf_points_filtered += shard_stats[s].leaf_points_filtered;
      }
    }
    if (cancelled) throw CancelledError();
  }

  Options options_;
  std::size_t size_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Keeps the mapped snapshot (or heap-fallback buffer) the flat views
  /// alias alive for the index's lifetime. Null for heap indexes.
  std::shared_ptr<const void> arena_owner_;
};

}  // namespace mvp::serve

#endif  // MVPTREE_SERVE_SHARDED_INDEX_H_

#ifndef MVPTREE_CORE_SEARCH_SHARED_H_
#define MVPTREE_CORE_SEARCH_SHARED_H_

#include <algorithm>
#include <cstddef>
#include <limits>
#include <vector>

#include "common/query.h"

/// \file
/// Search primitives shared by every representation of an mvp-tree.
///
/// The heap tree (core/mvp_tree.h) and the flat mmap-native view
/// (snapshot/flat_tree.h) must return bit-identical results for the same
/// logical tree — the equivalence suite asserts it query by query. The
/// pruning and candidate-set arithmetic both traversals rely on therefore
/// lives here, once: an annulus/shell intersection test, the k-NN
/// shrinking-radius bookkeeping, and stats merging. Keeping these shared
/// makes "the two representations agree" a structural property instead of
/// a discipline.

namespace mvp::core {

/// Does the query annulus [d-r, d+r] intersect the shell [lo, hi]?
inline bool ShellIntersects(double d, double r, double lo, double hi) {
  return d - r <= hi && d + r >= lo;
}

/// Current k-NN pruning radius: the k-th best distance so far, or infinity
/// while the candidate heap is not yet full.
inline double KnnTau(const std::vector<Neighbor>& heap, std::size_t k) {
  return heap.size() < k ? std::numeric_limits<double>::infinity()
                         : heap.front().distance;
}

/// Offers a candidate to the max-heap (under NeighborLess) of the best k.
inline void KnnOffer(std::vector<Neighbor>& heap, std::size_t k, Neighbor n) {
  if (heap.size() < k) {
    heap.push_back(n);
    std::push_heap(heap.begin(), heap.end(), NeighborLess);
  } else if (NeighborLess(n, heap.front())) {
    std::pop_heap(heap.begin(), heap.end(), NeighborLess);
    heap.back() = n;
    std::push_heap(heap.begin(), heap.end(), NeighborLess);
  }
}

/// Accumulates one search's counters into an aggregate.
inline void MergeSearchStats(SearchStats* out, const SearchStats& in) {
  out->distance_computations += in.distance_computations;
  out->nodes_visited += in.nodes_visited;
  out->leaf_points_seen += in.leaf_points_seen;
  out->leaf_points_filtered += in.leaf_points_filtered;
}

}  // namespace mvp::core

#endif  // MVPTREE_CORE_SEARCH_SHARED_H_

#ifndef MVPTREE_CORE_SEARCH_SHARED_H_
#define MVPTREE_CORE_SEARCH_SHARED_H_

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/query.h"

/// \file
/// Search primitives shared by every representation of an mvp-tree.
///
/// The heap tree (core/mvp_tree.h) and the flat mmap-native view
/// (snapshot/flat_tree.h) must return bit-identical results for the same
/// logical tree — the equivalence suite asserts it query by query. The
/// pruning and candidate-set arithmetic both traversals rely on therefore
/// lives here, once: an annulus/shell intersection test, the k-NN
/// shrinking-radius bookkeeping, and stats merging. Keeping these shared
/// makes "the two representations agree" a structural property instead of
/// a discipline.

namespace mvp::core {

/// Does the query annulus [d-r, d+r] intersect the shell [lo, hi]?
inline bool ShellIntersects(double d, double r, double lo, double hi) {
  return d - r <= hi && d + r >= lo;
}

/// Current k-NN pruning radius: the k-th best distance so far, or infinity
/// while the candidate heap is not yet full.
inline double KnnTau(const std::vector<Neighbor>& heap, std::size_t k) {
  return heap.size() < k ? std::numeric_limits<double>::infinity()
                         : heap.front().distance;
}

/// Offers a candidate to the max-heap (under NeighborLess) of the best k.
inline void KnnOffer(std::vector<Neighbor>& heap, std::size_t k, Neighbor n) {
  if (heap.size() < k) {
    heap.push_back(n);
    std::push_heap(heap.begin(), heap.end(), NeighborLess);
  } else if (NeighborLess(n, heap.front())) {
    std::pop_heap(heap.begin(), heap.end(), NeighborLess);
    heap.back() = n;
    std::push_heap(heap.begin(), heap.end(), NeighborLess);
  }
}

/// Chunk width of the two-phase range-search leaf filter. 64 entries = one
/// pass/fail bit per position in a std::uint64_t mask, which is also what
/// metric::kernels::AnnulusMask produces per sweep.
inline constexpr std::size_t kLeafFilterChunk = 64;

/// The range-search leaf filter, shared by every representation.
///
/// Leaves are processed in kLeafFilterChunk-entry chunks, two phases per
/// chunk: `mask_of(base, n)` computes an n-bit pass mask using only the
/// precomputed D1/D2/PATH arrays (no metric calls — the flat SoA layout runs
/// this as branchless compare+mask sweeps), then the chunk's seen/filtered
/// counters are charged, then `eval(i)` runs the real metric on each
/// surviving entry in ascending order (each call is a cancellation point).
/// The heap tree and both flat arena versions all funnel through this one
/// structure, so the interleaving of counter updates and metric calls — and
/// therefore SearchStats at any mid-leaf budget cancellation — is identical
/// across representations by construction.
///
/// `mask_of` must leave bits >= n clear.
template <typename MaskFn, typename EvalFn>
void ChunkedRangeFilter(std::size_t count, MaskFn&& mask_of, EvalFn&& eval,
                        SearchStats& stats) {
  for (std::size_t base = 0; base < count; base += kLeafFilterChunk) {
    const std::size_t n = std::min(kLeafFilterChunk, count - base);
    std::uint64_t mask = mask_of(base, n);
    stats.leaf_points_seen += n;
    stats.leaf_points_filtered += n - static_cast<std::size_t>(
        std::popcount(mask));
    while (mask != 0) {
      const unsigned bit = static_cast<unsigned>(std::countr_zero(mask));
      mask &= mask - 1;
      eval(base + bit);
    }
  }
}

/// Precomputed root vantage-point distances for one query of a batch
/// (serve::RunBatch amortises a root's vp distances across co-arriving
/// queries with the many-queries-one-vantage-point kernel shape). A consumer
/// substitutes d1/d2 for its own root metric calls; the values are
/// bit-identical to what those calls would return, and the consumer still
/// charges SearchStats (and the cancellation budget) for each one, so primed
/// and unprimed searches are indistinguishable in results and stats.
struct RootPrime {
  double d1 = 0.0;
  double d2 = 0.0;
  bool has_d1 = false;
  bool has_d2 = false;
};

/// Charges one primed (already-evaluated) distance to the active
/// cancellation budget, if the metric participates in budget accounting.
template <typename Metric>
inline void ConsumePrimedDistance(const Metric& metric) {
  if constexpr (requires { metric.CountPrimed(); }) {
    metric.CountPrimed();
  }
}

/// Accumulates one search's counters into an aggregate.
inline void MergeSearchStats(SearchStats* out, const SearchStats& in) {
  out->distance_computations += in.distance_computations;
  out->nodes_visited += in.nodes_visited;
  out->leaf_points_seen += in.leaf_points_seen;
  out->leaf_points_filtered += in.leaf_points_filtered;
}

}  // namespace mvp::core

#endif  // MVPTREE_CORE_SEARCH_SHARED_H_

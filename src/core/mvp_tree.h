#ifndef MVPTREE_CORE_MVP_TREE_H_
#define MVPTREE_CORE_MVP_TREE_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "common/codec.h"
#include "common/macros.h"
#include "common/query.h"
#include "common/rng.h"
#include "common/status.h"
#include "core/search_shared.h"
#include "metric/metric.h"
#include "vptree/vp_select.h"

/// \file
/// The multi-vantage-point tree — the paper's contribution (§4).
///
/// An mvp-tree node uses TWO vantage points (each node is "two levels of a
/// vantage point tree where all the children nodes at the lower level use
/// the same vantage point"), giving fanout m² from m partitions per vantage
/// point, and exploits two observations:
///
///  * Observation 1: a vantage point can partition regions it does not
///    belong to, so one second-level vantage point is shared by all m
///    first-level partitions — a search that descends into several branches
///    pays ONE distance computation where a vp-tree pays one per branch.
///  * Observation 2: the distances between a data point and the vantage
///    points on its root→leaf path are computed during construction anyway;
///    keeping the first p of them (PATH[1..p]) lets the search filter leaf
///    points through the triangle inequality before any distance
///    computation.
///
/// Leaves hold up to k points with their exact distances D1/D2 to the leaf's
/// own vantage points plus their PATH arrays; "the major filtering step ...
/// is delayed to the leaf level" where those stored distances make most
/// candidate points free to reject.
///
/// Template parameters mirror the paper's setting: any object domain with a
/// metric distance function and nothing else.
///
/// Thread safety: the tree is immutable after Build, so const member
/// functions (all searches, Stats, Serialize, ValidateInvariants) may be
/// called concurrently from any number of threads, provided the metric's
/// operator() is itself const-thread-safe (all bundled metrics are;
/// CountingMetric's shared counter is not — use AtomicCountingMetric when
/// counting across threads). src/serve/ builds a concurrent query engine
/// on exactly this guarantee.

namespace mvp::core {

template <typename Object, metric::MetricFor<Object> Metric>
class MvpTree {
 public:
  /// Construction parameters — the paper's (m, k, p) triple plus
  /// reproduction knobs.
  struct Options {
    /// m: "the number of partitions created by each vantage point". Fanout
    /// of an internal node is m². Paper: "order 3 (m) gives the most
    /// reasonable results".
    int order = 3;
    /// k: "the maximum fanout for the leaf nodes". The paper's best
    /// configurations use large leaves (e.g. mvpt(3,80)): "It is a good
    /// idea to keep k large so that most of the data items are kept in the
    /// leaves."
    int leaf_capacity = 80;
    /// p: "the number of distances for the data points at the leaves to be
    /// kept". Paper uses 5 for the vector experiments, 4 for images.
    int num_path_distances = 5;
    /// First-vantage-point picker (paper default: random; §4.2 notes any
    /// vp-tree selection heuristic applies).
    vptree::VpSelectOptions selection;
    /// Seed for random choices.
    std::uint64_t seed = 0;
    /// Ablation: store exact per-child [min,max] distance bounds instead of
    /// the paper's m-1 cutoff values per vantage point.
    bool store_exact_bounds = false;
  };

  /// Builds an mvp-tree over `objects`; ids are positions in the input.
  /// Returns InvalidArgument for unusable options. Empty input is valid.
  static Result<MvpTree> Build(std::vector<Object> objects, Metric metric,
                               const Options& options = Options{}) {
    if (options.order < 2) {
      return Status::InvalidArgument("mvp-tree order (m) must be >= 2");
    }
    if (options.leaf_capacity < 1) {
      return Status::InvalidArgument("mvp-tree leaf capacity (k) must be >= 1");
    }
    if (options.num_path_distances < 0) {
      return Status::InvalidArgument("mvp-tree path distances (p) must be >= 0");
    }
    MvpTree tree(std::move(objects), std::move(metric), options);
    tree.BuildTree();
    return tree;
  }

  /// All objects within `radius` of `query` (closed ball: d(Xi, Y) <= r),
  /// sorted by distance then id. Implements the depth-first search of §4.3
  /// with the PATH[] query-distance array and leaf filtering.
  std::vector<Neighbor> RangeSearch(const Object& query, double radius,
                                    SearchStats* stats = nullptr) const {
    std::vector<Neighbor> result;
    SearchStats local;
    RangeSearchInto(query, radius, &result, &local);
    std::sort(result.begin(), result.end(), NeighborLess);
    if (stats != nullptr) MergeStats(stats, local);
    return result;
  }

  /// RangeSearch appending unsorted hits into the caller-owned `*out` and
  /// accounting into the caller-owned `*stats` as the search progresses.
  /// Because both outlive an exception unwind, a search cancelled mid-way
  /// (see serve/cancel.h) leaves in `*out` exactly the hits found so far —
  /// each one a true member of the full answer, since every appended
  /// neighbor passed the d(Q, Xi) <= r test with an exact metric value.
  /// This is what the serving layer's partial-results harvest builds on.
  void RangeSearchInto(const Object& query, double radius,
                       std::vector<Neighbor>* out,
                       SearchStats* stats = nullptr) const {
    MVP_DCHECK(radius >= 0);
    MVP_DCHECK(out != nullptr);
    SearchStats local;
    SearchStats& sink = stats != nullptr ? *stats : local;
    if (root_ != nullptr) {
      std::vector<double> qpath;
      qpath.reserve(static_cast<std::size_t>(options_.num_path_distances));
      RangeSearchNode(*root_, query, radius, qpath, *out, sink);
    }
  }

  /// The k nearest objects via shrinking-radius branch-and-bound; children
  /// are visited in order of their distance lower bound (combining both
  /// vantage points) and leaf points are pre-filtered through D1/D2/PATH,
  /// so the mvp-tree's leaf-level filtering carries over to k-NN.
  std::vector<Neighbor> KnnSearch(const Object& query, std::size_t k,
                                  SearchStats* stats = nullptr) const {
    std::vector<Neighbor> heap;
    SearchStats local;
    KnnSearchInto(query, k, &heap, &local);
    std::sort_heap(heap.begin(), heap.end(), NeighborLess);
    if (stats != nullptr) MergeStats(stats, local);
    return heap;
  }

  /// KnnSearch maintaining its candidate set in the caller-owned `*heap`
  /// (a max-heap under NeighborLess; pass it empty) and accounting into the
  /// caller-owned `*stats`. On a mid-search cancellation the heap holds the
  /// best <= k neighbors among the points evaluated so far — a valid
  /// degraded answer, though not necessarily the true top-k. Callers
  /// sort (std::sort or std::sort_heap) before presenting.
  void KnnSearchInto(const Object& query, std::size_t k,
                     std::vector<Neighbor>* heap,
                     SearchStats* stats = nullptr) const {
    MVP_DCHECK(heap != nullptr);
    SearchStats local;
    SearchStats& sink = stats != nullptr ? *stats : local;
    if (root_ != nullptr && k > 0) {
      std::vector<double> qpath;
      qpath.reserve(static_cast<std::size_t>(options_.num_path_distances));
      KnnSearchNode(*root_, query, k, qpath, *heap, sink);
    }
  }

  /// Budgeted (approximate) k-NN: identical to KnnSearch but stops after
  /// `max_distance_computations` metric evaluations, returning the best k
  /// found so far. Because children are visited best-bound-first and leaf
  /// candidates are pre-filtered through D1/D2/PATH, small budgets already
  /// reach high recall; an infinite budget gives the exact answer. The
  /// standard time/quality knob for expensive metrics.
  std::vector<Neighbor> KnnSearchApproximate(
      const Object& query, std::size_t k,
      std::uint64_t max_distance_computations,
      SearchStats* stats = nullptr) const {
    std::vector<Neighbor> heap;
    SearchStats local;
    if (root_ != nullptr && k > 0 && max_distance_computations > 0) {
      std::vector<double> qpath;
      qpath.reserve(static_cast<std::size_t>(options_.num_path_distances));
      KnnSearchNodeBudgeted(*root_, query, k, qpath, heap, local,
                            max_distance_computations);
    }
    std::sort_heap(heap.begin(), heap.end(), NeighborLess);
    if (stats != nullptr) MergeStats(stats, local);
    return heap;
  }

  /// All objects at distance >= `radius` from `query` ("objects that are
  /// farther than a given range from a query object can also be asked",
  /// §2), sorted by decreasing distance. Uses the dual pruning rule: a
  /// subtree is skipped when d(Q,vp) + shell_upper < radius proves every
  /// point is too close.
  std::vector<Neighbor> FarthestRangeSearch(const Object& query, double radius,
                                            SearchStats* stats = nullptr) const {
    std::vector<Neighbor> result;
    SearchStats local;
    if (root_ != nullptr) {
      std::vector<double> qpath;
      FarthestRangeNode(*root_, query, radius, qpath, result, local);
    }
    std::sort(result.begin(), result.end(), FartherFirst);
    if (stats != nullptr) MergeStats(stats, local);
    return result;
  }

  /// The k objects farthest from `query` (§2's "the farthest, or the k
  /// farthest objects"), sorted by decreasing distance.
  std::vector<Neighbor> FarthestSearch(const Object& query, std::size_t k,
                                       SearchStats* stats = nullptr) const {
    std::vector<Neighbor> heap;  // min-heap on distance (worst of the best k)
    SearchStats local;
    if (root_ != nullptr && k > 0) {
      std::vector<double> qpath;
      FarthestKnnNode(*root_, query, k, qpath, heap, local);
    }
    std::sort(heap.begin(), heap.end(), FartherFirst);
    if (stats != nullptr) MergeStats(stats, local);
    return heap;
  }

  std::size_t size() const { return objects_.size(); }
  const Object& object(std::size_t id) const {
    MVP_DCHECK(id < objects_.size());
    return objects_[id];
  }
  const Metric& metric() const { return metric_; }
  const Options& options() const { return options_; }

  /// Structural statistics. For a full mvp-tree of height h the paper gives
  /// 2*(m^(2h) - 1)/(m^2 - 1) vantage points and m^(2(h-1))*k leaf points;
  /// tests validate these formulas against this accounting.
  TreeStats Stats() const {
    TreeStats stats;
    stats.construction_distance_computations = construction_distances_;
    if (root_ != nullptr) CollectStats(*root_, 1, stats);
    return stats;
  }

  /// Deep consistency check (O(n log n) distance computations): verifies
  /// that every point is stored exactly once; that every leaf's D1/D2 and
  /// PATH entries equal the actual distances to the leaf's own and ancestor
  /// vantage points; and that every point's distance to each ancestor
  /// vantage point lies inside its child's recorded shell. Returns
  /// Corruption naming the first violated invariant — useful after
  /// deserializing untrusted bytes or when developing custom metrics.
  Status ValidateInvariants() const {
    std::vector<bool> seen(objects_.size(), false);
    if (root_ == nullptr) {
      return objects_.empty()
                 ? Status::OK()
                 : Status::Corruption("non-empty tree has no root");
    }
    std::vector<const Object*> ancestors;
    MVP_RETURN_NOT_OK(ValidateNode(*root_, ancestors, seen));
    for (std::size_t id = 0; id < seen.size(); ++id) {
      if (!seen[id]) {
        return Status::Corruption("object " + std::to_string(id) +
                                  " missing from tree");
      }
    }
    return Status::OK();
  }

  /// Serializes the tree (options, objects via `codec`, structure, stored
  /// distances) into the versioned little-endian format described in
  /// DESIGN.md §5.6. The metric itself is NOT serialized; Deserialize must
  /// be handed the same metric the tree was built with.
  template <CodecFor<Object> Codec>
  Status Serialize(BinaryWriter* writer, const Codec& codec) const {
    writer->Write<std::uint32_t>(kMagic);
    writer->Write<std::uint32_t>(kFormatVersion);
    writer->Write<std::int32_t>(options_.order);
    writer->Write<std::int32_t>(options_.leaf_capacity);
    writer->Write<std::int32_t>(options_.num_path_distances);
    writer->Write<std::uint8_t>(options_.store_exact_bounds ? 1 : 0);
    writer->Write<std::uint64_t>(objects_.size());
    for (const Object& obj : objects_) codec.Write(*writer, obj);
    writer->WriteVector(path_pool_);
    WriteNode(writer, root_.get());
    return Status::OK();
  }

  /// Reconstructs a tree serialized by Serialize. `metric` must equal the
  /// build-time metric (stored distances are trusted, not recomputed).
  /// Corrupted or truncated input yields a Corruption status, never UB.
  template <CodecFor<Object> Codec>
  static Result<MvpTree> Deserialize(BinaryReader* reader, Metric metric,
                                     const Codec& codec) {
    std::uint32_t magic = 0, version = 0;
    MVP_RETURN_NOT_OK(reader->Read<std::uint32_t>(&magic));
    if (magic != kMagic) return Status::Corruption("bad mvp-tree magic");
    MVP_RETURN_NOT_OK(reader->Read<std::uint32_t>(&version));
    if (version != kFormatVersion) {
      return Status::NotSupported("unknown mvp-tree format version");
    }
    Options options;
    std::uint8_t bounds_flag = 0;
    MVP_RETURN_NOT_OK(reader->Read<std::int32_t>(&options.order));
    MVP_RETURN_NOT_OK(reader->Read<std::int32_t>(&options.leaf_capacity));
    MVP_RETURN_NOT_OK(reader->Read<std::int32_t>(&options.num_path_distances));
    MVP_RETURN_NOT_OK(reader->Read<std::uint8_t>(&bounds_flag));
    options.store_exact_bounds = bounds_flag != 0;
    if (options.order < 2 || options.leaf_capacity < 1 ||
        options.num_path_distances < 0) {
      return Status::Corruption("mvp-tree options out of range");
    }
    std::uint64_t count = 0;
    MVP_RETURN_NOT_OK(reader->Read<std::uint64_t>(&count));
    if (count > reader->remaining()) {
      // Every serialized object occupies at least one byte; cheap guard
      // against allocating from a corrupt count.
      return Status::Corruption("object count exceeds buffer");
    }
    std::vector<Object> objects(static_cast<std::size_t>(count));
    for (auto& obj : objects) MVP_RETURN_NOT_OK(codec.Read(*reader, &obj));

    MvpTree tree(std::move(objects), std::move(metric), options);
    MVP_RETURN_NOT_OK(reader->ReadVector(&tree.path_pool_));
    auto root = ReadNode(reader, tree, 0);
    if (!root.ok()) return root.status();
    tree.root_ = std::move(root).ValueOrDie();
    return tree;
  }

  /// On-disk stream identity, public so other readers of the serialized
  /// stream (the flat-arena transcoder, the snapshot store's fail-fast
  /// options peek) share one definition instead of re-declaring magics.
  static constexpr std::uint32_t kMagic = 0x5450564d;  // "MVPT"
  static constexpr std::uint32_t kFormatVersion = 1;
  static constexpr std::size_t kMaxDeserializeDepth = 512;

 private:
  /// One data point stored in a leaf: its id, exact distances to the leaf's
  /// two vantage points (the paper's D1[i], D2[i] arrays), and its PATH
  /// distances to the first p ancestor vantage points, stored in a shared
  /// flat pool to keep leaves cache-friendly.
  struct LeafEntry {
    std::size_t id = 0;
    double d1 = 0.0;
    double d2 = 0.0;
    std::uint32_t path_offset = 0;
    std::uint32_t path_length = 0;
  };

  struct Node {
    bool is_leaf = false;
    std::size_t vp1_id = 0;
    std::size_t vp2_id = 0;
    bool has_vp2 = false;
    // Internal nodes: m shells around vp1 and, per first-level partition,
    // m shells around vp2 — flattened as child index c = i*m + j.
    std::vector<double> lower1, upper1;  // size m
    std::vector<double> lower2, upper2;  // size m*m
    std::vector<std::unique_ptr<Node>> children;  // size m*m
    // Leaf nodes:
    std::vector<LeafEntry> bucket;
  };

  /// Construction working entry; `path` accumulates ancestor distances.
  struct Entry {
    std::size_t id = 0;
    double d1 = 0.0;
    double d2 = 0.0;
    std::vector<double> path;
  };

  MvpTree(std::vector<Object> objects, Metric metric, const Options& options)
      : objects_(std::move(objects)),
        metric_(std::move(metric)),
        options_(options) {}

  double Distance(const Object& a, const Object& b) {
    ++construction_distances_;
    return metric_(a, b);
  }

  void BuildTree() {
    Rng rng(options_.seed);
    std::vector<Entry> entries(objects_.size());
    for (std::size_t i = 0; i < objects_.size(); ++i) entries[i].id = i;
    root_ = BuildNode(entries, 0, entries.size(), rng);
  }

  /// §4.2's construction, generalized from m=2 to any m: the first vantage
  /// point partitions the node's points into m groups of equal cardinality;
  /// the second vantage point — drawn from the partition farthest from the
  /// first ("If the two vantage points were close to each other, they would
  /// not be able to effectively partition the dataset") — splits each group
  /// into m subgroups.
  std::unique_ptr<Node> BuildNode(std::vector<Entry>& entries,
                                  std::size_t begin, std::size_t end,
                                  Rng& rng) {
    if (begin == end) return nullptr;
    const std::size_t count = end - begin;
    const std::size_t p =
        static_cast<std::size_t>(options_.num_path_distances);

    if (count <= static_cast<std::size_t>(options_.leaf_capacity) + 2) {
      return BuildLeaf(entries, begin, end, rng);
    }

    auto node = std::make_unique<Node>();
    const std::size_t m = static_cast<std::size_t>(options_.order);

    // -- First vantage point.
    const std::size_t vp1_pos = vptree::SelectVantagePoint(
        begin, end,
        [&](std::size_t i) -> const Object& { return objects_[entries[i].id]; },
        metric_, rng, options_.selection, &construction_distances_);
    std::swap(entries[begin], entries[vp1_pos]);
    node->vp1_id = entries[begin].id;
    const Object& vp1 = objects_[node->vp1_id];

    // d(Si, Sv1) for every remaining point; record in PATH while room.
    for (std::size_t i = begin + 1; i < end; ++i) {
      entries[i].d1 = Distance(vp1, objects_[entries[i].id]);
      if (entries[i].path.size() < p) entries[i].path.push_back(entries[i].d1);
    }
    std::sort(entries.begin() + static_cast<std::ptrdiff_t>(begin) + 1,
              entries.begin() + static_cast<std::ptrdiff_t>(end),
              [](const Entry& a, const Entry& b) { return a.d1 < b.d1; });

    // Positional split of the count-1 points into m equal groups.
    const std::size_t first = begin + 1;
    const std::size_t points = count - 1;
    std::vector<std::size_t> group_begin(m + 1);
    for (std::size_t g = 0; g <= m; ++g) {
      group_begin[g] = first + points * g / m;
    }

    // -- Second vantage point: arbitrary point of the farthest (last)
    // partition, removed from it. Swapping within the last group is safe:
    // each group is re-sorted by d2 below.
    const std::size_t last_begin = group_begin[m - 1];
    MVP_DCHECK(last_begin < end);  // count >= k+3 >= 4 ensures non-empty
    const std::size_t vp2_pos = last_begin + rng.NextIndex(end - last_begin);
    std::swap(entries[vp2_pos], entries[end - 1]);
    node->vp2_id = entries[end - 1].id;
    node->has_vp2 = true;
    const Object& vp2 = objects_[node->vp2_id];
    const std::size_t shrunk_end = end - 1;  // vp2 no longer a data point

    // d(Sj, Sv2) for every remaining point; record in PATH while room.
    for (std::size_t i = first; i < shrunk_end; ++i) {
      entries[i].d2 = Distance(vp2, objects_[entries[i].id]);
      if (entries[i].path.size() < p) entries[i].path.push_back(entries[i].d2);
    }

    node->children.resize(m * m);
    node->lower1.assign(m, 0.0);
    node->upper1.assign(m, std::numeric_limits<double>::infinity());
    node->lower2.assign(m * m, 0.0);
    node->upper2.assign(m * m, std::numeric_limits<double>::infinity());

    double prev_cutoff1 = 0.0;
    for (std::size_t g = 0; g < m; ++g) {
      const std::size_t g_begin = group_begin[g];
      const std::size_t g_end = std::min(group_begin[g + 1], shrunk_end);
      if (g_begin >= g_end) continue;  // tiny node: empty partition

      // Shell bounds around vp1 for this group.
      if (options_.store_exact_bounds) {
        auto [mn, mx] = MinMaxD1(entries, g_begin, g_end);
        node->lower1[g] = mn;
        node->upper1[g] = mx;
      } else {
        auto [mn, mx] = MinMaxD1(entries, g_begin, g_end);
        node->lower1[g] = g == 0 ? 0.0 : prev_cutoff1;
        node->upper1[g] =
            g + 1 == m ? std::numeric_limits<double>::infinity() : mx;
        prev_cutoff1 = mx;
      }

      // Split this group into m subgroups by d2.
      std::sort(entries.begin() + static_cast<std::ptrdiff_t>(g_begin),
                entries.begin() + static_cast<std::ptrdiff_t>(g_end),
                [](const Entry& a, const Entry& b) { return a.d2 < b.d2; });
      const std::size_t sub_points = g_end - g_begin;
      double prev_cutoff2 = 0.0;
      for (std::size_t s = 0; s < m; ++s) {
        const std::size_t s_begin = g_begin + sub_points * s / m;
        const std::size_t s_end = g_begin + sub_points * (s + 1) / m;
        if (s_begin >= s_end) continue;
        const std::size_t c = g * m + s;
        if (options_.store_exact_bounds) {
          node->lower2[c] = entries[s_begin].d2;
          node->upper2[c] = entries[s_end - 1].d2;
        } else {
          node->lower2[c] = s == 0 ? 0.0 : prev_cutoff2;
          node->upper2[c] = s + 1 == m
                                ? std::numeric_limits<double>::infinity()
                                : entries[s_end - 1].d2;
          prev_cutoff2 = entries[s_end - 1].d2;
        }
        node->children[c] = BuildNode(entries, s_begin, s_end, rng);
      }
    }
    return node;
  }

  std::unique_ptr<Node> BuildLeaf(std::vector<Entry>& entries,
                                  std::size_t begin, std::size_t end,
                                  Rng& rng) {
    auto leaf = std::make_unique<Node>();
    leaf->is_leaf = true;
    const std::size_t count = end - begin;

    // First vantage point: arbitrary (2.1).
    const std::size_t vp1_pos = begin + rng.NextIndex(count);
    std::swap(entries[begin], entries[vp1_pos]);
    leaf->vp1_id = entries[begin].id;
    const Object& vp1 = objects_[leaf->vp1_id];
    if (count == 1) return leaf;  // single point: vantage point only

    // D1 for the rest (2.3); second vantage point = farthest from the first
    // (2.4: "the farthest point may very well be the best candidate").
    std::size_t farthest = begin + 1;
    for (std::size_t i = begin + 1; i < end; ++i) {
      entries[i].d1 = Distance(vp1, objects_[entries[i].id]);
      if (entries[i].d1 > entries[farthest].d1) farthest = i;
    }
    std::swap(entries[begin + 1], entries[farthest]);
    leaf->vp2_id = entries[begin + 1].id;
    leaf->has_vp2 = true;
    const Object& vp2 = objects_[leaf->vp2_id];

    // D2 for the data points (2.6) and bucket materialization.
    leaf->bucket.reserve(count - 2);
    for (std::size_t i = begin + 2; i < end; ++i) {
      entries[i].d2 = Distance(vp2, objects_[entries[i].id]);
      LeafEntry e;
      e.id = entries[i].id;
      e.d1 = entries[i].d1;
      e.d2 = entries[i].d2;
      e.path_offset = static_cast<std::uint32_t>(path_pool_.size());
      e.path_length = static_cast<std::uint32_t>(entries[i].path.size());
      path_pool_.insert(path_pool_.end(), entries[i].path.begin(),
                        entries[i].path.end());
      leaf->bucket.push_back(e);
    }
    return leaf;
  }

  static std::pair<double, double> MinMaxD1(const std::vector<Entry>& entries,
                                            std::size_t begin,
                                            std::size_t end) {
    // Groups are d1-sorted when this is called right after the d1 sort, but
    // the last group may have had vp2 swapped out, so scan defensively.
    double mn = entries[begin].d1;
    double mx = entries[begin].d1;
    for (std::size_t i = begin + 1; i < end; ++i) {
      mn = std::min(mn, entries[i].d1);
      mx = std::max(mx, entries[i].d1);
    }
    return {mn, mx};
  }

  // ---------------------------------------------------------------- search

  // Shell/annulus pruning and the k-NN candidate heap are shared with the
  // flat mmap-native representation (core/search_shared.h) so both
  // traversals provably apply identical arithmetic.
  static bool Intersects(double d, double r, double lo, double hi) {
    return ShellIntersects(d, r, lo, hi);
  }

  /// §4.3 range search. `qpath` holds PATH[l] = d(Q, ancestor vantage
  /// points), grown (up to p) while descending and restored on return.
  void RangeSearchNode(const Node& node, const Object& query, double radius,
                       std::vector<double>& qpath,
                       std::vector<Neighbor>& result,
                       SearchStats& stats) const {
    ++stats.nodes_visited;
    // Step 1: distances to the node's vantage points.
    const double d1 = metric_(query, objects_[node.vp1_id]);
    ++stats.distance_computations;
    if (d1 <= radius) result.push_back(Neighbor{node.vp1_id, d1});
    double d2 = 0.0;
    if (node.has_vp2) {
      d2 = metric_(query, objects_[node.vp2_id]);
      ++stats.distance_computations;
      if (d2 <= radius) result.push_back(Neighbor{node.vp2_id, d2});
    }

    if (node.is_leaf) {
      FilterLeaf(node, query, radius, d1, d2, qpath, &result, nullptr, 0,
                 stats);
      return;
    }

    // Step 3.1: extend the query PATH for descendants' leaf filtering.
    const std::size_t p =
        static_cast<std::size_t>(options_.num_path_distances);
    std::size_t pushed = 0;
    if (qpath.size() < p) {
      qpath.push_back(d1);
      ++pushed;
      if (qpath.size() < p) {
        qpath.push_back(d2);
        ++pushed;
      }
    }

    // Steps 3.2/3.3 generalized: enter child (g, s) iff the query annulus
    // around BOTH vantage points intersects the child's shells.
    const std::size_t m = static_cast<std::size_t>(options_.order);
    for (std::size_t g = 0; g < m; ++g) {
      if (!Intersects(d1, radius, node.lower1[g], node.upper1[g])) continue;
      for (std::size_t s = 0; s < m; ++s) {
        const std::size_t c = g * m + s;
        if (node.children[c] == nullptr) continue;
        if (!Intersects(d2, radius, node.lower2[c], node.upper2[c])) continue;
        RangeSearchNode(*node.children[c], query, radius, qpath, result,
                        stats);
      }
    }
    qpath.resize(qpath.size() - pushed);
  }

  /// Step 2 of §4.3: leaf filtering through D1, D2 and PATH before any
  /// distance computation. Exactly one of `range_out` (range mode, uses
  /// `radius`) or `heap_out` (k-NN mode, uses shrinking radius) is non-null.
  void FilterLeaf(const Node& node, const Object& query, double radius,
                  double d1, double d2, const std::vector<double>& qpath,
                  std::vector<Neighbor>* range_out,
                  std::vector<Neighbor>* heap_out, std::size_t k,
                  SearchStats& stats) const {
    if (range_out != nullptr) {
      // Range mode: the pruning radius is fixed, so the annulus tests for a
      // whole chunk can run before any metric call. ChunkedRangeFilter
      // (core/search_shared.h) fixes the interleaving of counter updates and
      // metric evaluations; the flat views run the identical structure with
      // SIMD mask sweeps over their SoA leaf arrays.
      ChunkedRangeFilter(
          node.bucket.size(),
          [&](std::size_t base, std::size_t n) {
            std::uint64_t mask = 0;
            for (std::size_t i = 0; i < n; ++i) {
              const LeafEntry& x = node.bucket[base + i];
              bool pass = std::abs(d1 - x.d1) <= radius &&
                          (!node.has_vp2 || std::abs(d2 - x.d2) <= radius);
              if (pass) {
                const std::size_t checks = std::min(
                    qpath.size(), static_cast<std::size_t>(x.path_length));
                MVP_DCHECK(qpath.size() == x.path_length);
                for (std::size_t j = 0; j < checks; ++j) {
                  if (std::abs(qpath[j] - path_pool_[x.path_offset + j]) >
                      radius) {
                    pass = false;
                    break;
                  }
                }
              }
              if (pass) mask |= std::uint64_t{1} << i;
            }
            return mask;
          },
          [&](std::size_t i) {
            const LeafEntry& x = node.bucket[i];
            const double d = metric_(query, objects_[x.id]);
            ++stats.distance_computations;
            if (d <= radius) range_out->push_back(Neighbor{x.id, d});
          },
          stats);
      return;
    }
    // k-NN mode: tau shrinks with every offer, so the filter stays
    // per-entry — a chunk-wide precomputed mask would use a stale radius.
    for (const LeafEntry& x : node.bucket) {
      ++stats.leaf_points_seen;
      const double r = Tau(*heap_out, k);
      bool pass = std::abs(d1 - x.d1) <= r &&
                  (!node.has_vp2 || std::abs(d2 - x.d2) <= r);
      if (pass) {
        const std::size_t checks =
            std::min(qpath.size(), static_cast<std::size_t>(x.path_length));
        MVP_DCHECK(qpath.size() == x.path_length);
        for (std::size_t j = 0; j < checks; ++j) {
          if (std::abs(qpath[j] - path_pool_[x.path_offset + j]) > r) {
            pass = false;
            break;
          }
        }
      }
      if (!pass) {
        ++stats.leaf_points_filtered;
        continue;
      }
      const double d = metric_(query, objects_[x.id]);
      ++stats.distance_computations;
      Offer(*heap_out, k, Neighbor{x.id, d});
    }
  }

  static double Tau(const std::vector<Neighbor>& heap, std::size_t k) {
    return KnnTau(heap, k);
  }

  static void Offer(std::vector<Neighbor>& heap, std::size_t k, Neighbor n) {
    KnnOffer(heap, k, n);
  }

  void KnnSearchNode(const Node& node, const Object& query, std::size_t k,
                     std::vector<double>& qpath, std::vector<Neighbor>& heap,
                     SearchStats& stats) const {
    ++stats.nodes_visited;
    const double d1 = metric_(query, objects_[node.vp1_id]);
    ++stats.distance_computations;
    Offer(heap, k, Neighbor{node.vp1_id, d1});
    double d2 = 0.0;
    if (node.has_vp2) {
      d2 = metric_(query, objects_[node.vp2_id]);
      ++stats.distance_computations;
      Offer(heap, k, Neighbor{node.vp2_id, d2});
    }

    if (node.is_leaf) {
      FilterLeaf(node, query, 0.0, d1, d2, qpath, nullptr, &heap, k, stats);
      return;
    }

    const std::size_t p =
        static_cast<std::size_t>(options_.num_path_distances);
    std::size_t pushed = 0;
    if (qpath.size() < p) {
      qpath.push_back(d1);
      ++pushed;
      if (qpath.size() < p) {
        qpath.push_back(d2);
        ++pushed;
      }
    }

    // Children in increasing order of their combined lower bound; stop as
    // soon as the bound exceeds the current k-th best.
    struct Ranked {
      double bound;
      std::size_t child;
    };
    const std::size_t m = static_cast<std::size_t>(options_.order);
    std::vector<Ranked> ranked;
    ranked.reserve(m * m);
    for (std::size_t g = 0; g < m; ++g) {
      const double b1 =
          std::max({0.0, node.lower1[g] - d1, d1 - node.upper1[g]});
      for (std::size_t s = 0; s < m; ++s) {
        const std::size_t c = g * m + s;
        if (node.children[c] == nullptr) continue;
        const double b2 =
            std::max({0.0, node.lower2[c] - d2, d2 - node.upper2[c]});
        ranked.push_back(Ranked{std::max(b1, b2), c});
      }
    }
    std::sort(ranked.begin(), ranked.end(),
              [](const Ranked& a, const Ranked& b) { return a.bound < b.bound; });
    for (const Ranked& r : ranked) {
      if (r.bound > Tau(heap, k)) break;
      KnnSearchNode(*node.children[r.child], query, k, qpath, heap, stats);
    }
    qpath.resize(qpath.size() - pushed);
  }

  // --------------------------------------------------------- validation

  Status ValidateNode(const Node& node, std::vector<const Object*>& ancestors,
                      std::vector<bool>& seen) const {
    auto mark = [&](std::size_t id) -> Status {
      if (id >= objects_.size()) {
        return Status::Corruption("id out of range");
      }
      if (seen[id]) {
        return Status::Corruption("object " + std::to_string(id) +
                                  " stored twice");
      }
      seen[id] = true;
      return Status::OK();
    };
    MVP_RETURN_NOT_OK(mark(node.vp1_id));
    if (node.has_vp2) MVP_RETURN_NOT_OK(mark(node.vp2_id));

    const Object& vp1 = objects_[node.vp1_id];
    const Object* vp2 = node.has_vp2 ? &objects_[node.vp2_id] : nullptr;
    constexpr double kTol = 1e-9;

    if (node.is_leaf) {
      for (const LeafEntry& x : node.bucket) {
        MVP_RETURN_NOT_OK(mark(x.id));
        const Object& obj = objects_[x.id];
        if (std::abs(metric_(obj, vp1) - x.d1) > kTol) {
          return Status::Corruption("leaf D1 mismatches actual distance");
        }
        if (vp2 != nullptr && std::abs(metric_(obj, *vp2) - x.d2) > kTol) {
          return Status::Corruption("leaf D2 mismatches actual distance");
        }
        const std::size_t expect_path = std::min(
            ancestors.size(),
            static_cast<std::size_t>(options_.num_path_distances));
        if (x.path_length != expect_path) {
          return Status::Corruption("leaf PATH length mismatch");
        }
        for (std::size_t j = 0; j < x.path_length; ++j) {
          if (std::abs(metric_(obj, *ancestors[j]) -
                       path_pool_[x.path_offset + j]) > kTol) {
            return Status::Corruption("leaf PATH distance mismatch");
          }
        }
      }
      return Status::OK();
    }

    const std::size_t m = static_cast<std::size_t>(options_.order);
    if (node.children.size() != m * m) {
      return Status::Corruption("internal node child count mismatch");
    }
    const std::size_t p =
        static_cast<std::size_t>(options_.num_path_distances);
    std::size_t pushed = 0;
    if (ancestors.size() < p) {
      ancestors.push_back(&vp1);
      ++pushed;
      if (ancestors.size() < p) {
        ancestors.push_back(vp2);
        ++pushed;
      }
    }
    Status status;
    for (std::size_t g = 0; g < m && status.ok(); ++g) {
      for (std::size_t s = 0; s < m && status.ok(); ++s) {
        const std::size_t c = g * m + s;
        if (node.children[c] == nullptr) continue;
        status = ValidateShell(*node.children[c], vp1, node.lower1[g],
                               node.upper1[g]);
        if (status.ok() && vp2 != nullptr) {
          status = ValidateShell(*node.children[c], *vp2, node.lower2[c],
                                 node.upper2[c]);
        }
        if (status.ok()) {
          status = ValidateNode(*node.children[c], ancestors, seen);
        }
      }
    }
    ancestors.resize(ancestors.size() - pushed);
    return status;
  }

  /// Every point of `subtree` must lie in [lo, hi] around `vp`.
  Status ValidateShell(const Node& subtree, const Object& vp, double lo,
                       double hi) const {
    constexpr double kTol = 1e-9;
    auto check = [&](std::size_t id) -> Status {
      const double d = metric_(objects_[id], vp);
      if (d < lo - kTol || d > hi + kTol) {
        return Status::Corruption("point outside its recorded shell");
      }
      return Status::OK();
    };
    MVP_RETURN_NOT_OK(check(subtree.vp1_id));
    if (subtree.has_vp2) MVP_RETURN_NOT_OK(check(subtree.vp2_id));
    if (subtree.is_leaf) {
      for (const LeafEntry& x : subtree.bucket) MVP_RETURN_NOT_OK(check(x.id));
      return Status::OK();
    }
    for (const auto& child : subtree.children) {
      if (child != nullptr) MVP_RETURN_NOT_OK(ValidateShell(*child, vp, lo, hi));
    }
    return Status::OK();
  }

  // ------------------------------------------------------- serialization

  static void WriteNode(BinaryWriter* writer, const Node* node) {
    if (node == nullptr) {
      writer->Write<std::uint8_t>(0);
      return;
    }
    writer->Write<std::uint8_t>(node->is_leaf ? 1 : 2);
    writer->Write<std::uint64_t>(node->vp1_id);
    writer->Write<std::uint8_t>(node->has_vp2 ? 1 : 0);
    writer->Write<std::uint64_t>(node->vp2_id);
    if (node->is_leaf) {
      writer->Write<std::uint64_t>(node->bucket.size());
      for (const LeafEntry& e : node->bucket) {
        writer->Write<std::uint64_t>(e.id);
        writer->Write<double>(e.d1);
        writer->Write<double>(e.d2);
        writer->Write<std::uint32_t>(e.path_offset);
        writer->Write<std::uint32_t>(e.path_length);
      }
      return;
    }
    writer->WriteVector(node->lower1);
    writer->WriteVector(node->upper1);
    writer->WriteVector(node->lower2);
    writer->WriteVector(node->upper2);
    for (const auto& child : node->children) WriteNode(writer, child.get());
  }

  static Result<std::unique_ptr<Node>> ReadNode(BinaryReader* reader,
                                                const MvpTree& tree,
                                                std::size_t depth) {
    if (depth > kMaxDeserializeDepth) {
      return Status::Corruption("mvp-tree nesting too deep");
    }
    std::uint8_t tag = 0;
    MVP_RETURN_NOT_OK(reader->Read<std::uint8_t>(&tag));
    if (tag == 0) return std::unique_ptr<Node>();
    if (tag > 2) return Status::Corruption("bad mvp-tree node tag");

    auto node = std::make_unique<Node>();
    node->is_leaf = tag == 1;
    std::uint64_t vp1 = 0, vp2 = 0;
    std::uint8_t has_vp2 = 0;
    MVP_RETURN_NOT_OK(reader->Read<std::uint64_t>(&vp1));
    MVP_RETURN_NOT_OK(reader->Read<std::uint8_t>(&has_vp2));
    MVP_RETURN_NOT_OK(reader->Read<std::uint64_t>(&vp2));
    const std::size_t n = tree.objects_.size();
    if (vp1 >= n || (has_vp2 != 0 && vp2 >= n)) {
      return Status::Corruption("vantage point id out of range");
    }
    node->vp1_id = static_cast<std::size_t>(vp1);
    node->vp2_id = static_cast<std::size_t>(vp2);
    node->has_vp2 = has_vp2 != 0;

    if (node->is_leaf) {
      std::uint64_t bucket_size = 0;
      MVP_RETURN_NOT_OK(reader->Read<std::uint64_t>(&bucket_size));
      if (bucket_size > reader->remaining()) {
        return Status::Corruption("leaf bucket size exceeds buffer");
      }
      node->bucket.resize(static_cast<std::size_t>(bucket_size));
      for (LeafEntry& e : node->bucket) {
        std::uint64_t id = 0;
        MVP_RETURN_NOT_OK(reader->Read<std::uint64_t>(&id));
        MVP_RETURN_NOT_OK(reader->Read<double>(&e.d1));
        MVP_RETURN_NOT_OK(reader->Read<double>(&e.d2));
        MVP_RETURN_NOT_OK(reader->Read<std::uint32_t>(&e.path_offset));
        MVP_RETURN_NOT_OK(reader->Read<std::uint32_t>(&e.path_length));
        if (id >= n) return Status::Corruption("leaf point id out of range");
        if (static_cast<std::size_t>(e.path_offset) + e.path_length >
            tree.path_pool_.size()) {
          return Status::Corruption("leaf PATH slice out of pool range");
        }
        e.id = static_cast<std::size_t>(id);
      }
      return node;
    }

    const std::size_t m = static_cast<std::size_t>(tree.options_.order);
    MVP_RETURN_NOT_OK(reader->ReadVector(&node->lower1));
    MVP_RETURN_NOT_OK(reader->ReadVector(&node->upper1));
    MVP_RETURN_NOT_OK(reader->ReadVector(&node->lower2));
    MVP_RETURN_NOT_OK(reader->ReadVector(&node->upper2));
    if (node->lower1.size() != m || node->upper1.size() != m ||
        node->lower2.size() != m * m || node->upper2.size() != m * m) {
      return Status::Corruption("internal node bound arrays malformed");
    }
    node->children.resize(m * m);
    for (auto& child : node->children) {
      auto sub = ReadNode(reader, tree, depth + 1);
      if (!sub.ok()) return sub.status();
      child = std::move(sub).ValueOrDie();
    }
    return node;
  }

  // ------------------------------------------------------ farthest search

  static bool FartherFirst(const Neighbor& a, const Neighbor& b) {
    if (a.distance != b.distance) return a.distance > b.distance;
    return a.id < b.id;
  }

  /// Upper bound on d(Q, x) for a leaf entry from the stored distances:
  /// d(Q,x) <= d(Q,sv) + d(x,sv) for every stored vantage point.
  double LeafUpperBound(const Node& node, const LeafEntry& x, double d1,
                        double d2, const std::vector<double>& qpath) const {
    double ub = d1 + x.d1;
    if (node.has_vp2) ub = std::min(ub, d2 + x.d2);
    const std::size_t checks =
        std::min(qpath.size(), static_cast<std::size_t>(x.path_length));
    for (std::size_t j = 0; j < checks; ++j) {
      ub = std::min(ub, qpath[j] + path_pool_[x.path_offset + j]);
    }
    return ub;
  }

  void FarthestRangeNode(const Node& node, const Object& query, double radius,
                         std::vector<double>& qpath,
                         std::vector<Neighbor>& result,
                         SearchStats& stats) const {
    ++stats.nodes_visited;
    const double d1 = metric_(query, objects_[node.vp1_id]);
    ++stats.distance_computations;
    if (d1 >= radius) result.push_back(Neighbor{node.vp1_id, d1});
    double d2 = 0.0;
    if (node.has_vp2) {
      d2 = metric_(query, objects_[node.vp2_id]);
      ++stats.distance_computations;
      if (d2 >= radius) result.push_back(Neighbor{node.vp2_id, d2});
    }
    if (node.is_leaf) {
      for (const LeafEntry& x : node.bucket) {
        ++stats.leaf_points_seen;
        if (LeafUpperBound(node, x, d1, d2, qpath) < radius) {
          ++stats.leaf_points_filtered;
          continue;
        }
        const double d = metric_(query, objects_[x.id]);
        ++stats.distance_computations;
        if (d >= radius) result.push_back(Neighbor{x.id, d});
      }
      return;
    }
    const std::size_t p =
        static_cast<std::size_t>(options_.num_path_distances);
    std::size_t pushed = 0;
    if (qpath.size() < p) {
      qpath.push_back(d1);
      ++pushed;
      if (qpath.size() < p) {
        qpath.push_back(d2);
        ++pushed;
      }
    }
    const std::size_t m = static_cast<std::size_t>(options_.order);
    for (std::size_t g = 0; g < m; ++g) {
      // Max possible distance within shell g: d1 + upper1[g].
      if (d1 + node.upper1[g] < radius) continue;
      for (std::size_t s = 0; s < m; ++s) {
        const std::size_t c = g * m + s;
        if (node.children[c] == nullptr) continue;
        if (d2 + node.upper2[c] < radius) continue;
        FarthestRangeNode(*node.children[c], query, radius, qpath, result,
                          stats);
      }
    }
    qpath.resize(qpath.size() - pushed);
  }

  /// Current farthest-k pruning threshold: the k-th farthest so far.
  static double FarTau(const std::vector<Neighbor>& heap, std::size_t k) {
    return heap.size() < k ? 0.0 : heap.front().distance;
  }

  static void OfferFar(std::vector<Neighbor>& heap, std::size_t k,
                       Neighbor n) {
    // Heap maximum under FartherFirst = the closest (least good) of the
    // kept k — the element evicted when something farther arrives. Mirrors
    // Offer(), whose NeighborLess-heap keeps the farthest at the front.
    if (heap.size() < k) {
      heap.push_back(n);
      std::push_heap(heap.begin(), heap.end(), FartherFirst);
    } else if (FartherFirst(n, heap.front())) {
      std::pop_heap(heap.begin(), heap.end(), FartherFirst);
      heap.back() = n;
      std::push_heap(heap.begin(), heap.end(), FartherFirst);
    }
  }

  void FarthestKnnNode(const Node& node, const Object& query, std::size_t k,
                       std::vector<double>& qpath,
                       std::vector<Neighbor>& heap,
                       SearchStats& stats) const {
    ++stats.nodes_visited;
    const double d1 = metric_(query, objects_[node.vp1_id]);
    ++stats.distance_computations;
    OfferFar(heap, k, Neighbor{node.vp1_id, d1});
    double d2 = 0.0;
    if (node.has_vp2) {
      d2 = metric_(query, objects_[node.vp2_id]);
      ++stats.distance_computations;
      OfferFar(heap, k, Neighbor{node.vp2_id, d2});
    }
    if (node.is_leaf) {
      for (const LeafEntry& x : node.bucket) {
        ++stats.leaf_points_seen;
        if (LeafUpperBound(node, x, d1, d2, qpath) < FarTau(heap, k)) {
          ++stats.leaf_points_filtered;
          continue;
        }
        const double d = metric_(query, objects_[x.id]);
        ++stats.distance_computations;
        OfferFar(heap, k, Neighbor{x.id, d});
      }
      return;
    }
    const std::size_t p =
        static_cast<std::size_t>(options_.num_path_distances);
    std::size_t pushed = 0;
    if (qpath.size() < p) {
      qpath.push_back(d1);
      ++pushed;
      if (qpath.size() < p) {
        qpath.push_back(d2);
        ++pushed;
      }
    }
    // Visit children in decreasing order of their distance upper bound.
    struct Ranked {
      double bound;
      std::size_t child;
    };
    const std::size_t m = static_cast<std::size_t>(options_.order);
    std::vector<Ranked> ranked;
    ranked.reserve(m * m);
    for (std::size_t g = 0; g < m; ++g) {
      for (std::size_t s = 0; s < m; ++s) {
        const std::size_t c = g * m + s;
        if (node.children[c] == nullptr) continue;
        ranked.push_back(Ranked{
            std::min(d1 + node.upper1[g], d2 + node.upper2[c]), c});
      }
    }
    std::sort(ranked.begin(), ranked.end(),
              [](const Ranked& a, const Ranked& b) { return a.bound > b.bound; });
    for (const Ranked& r : ranked) {
      if (r.bound < FarTau(heap, k)) break;
      FarthestKnnNode(*node.children[r.child], query, k, qpath, heap, stats);
    }
    qpath.resize(qpath.size() - pushed);
  }

  /// KnnSearchNode with a hard cap on distance computations. Returns false
  /// once the budget is exhausted (unwinds the whole recursion).
  bool KnnSearchNodeBudgeted(const Node& node, const Object& query,
                             std::size_t k, std::vector<double>& qpath,
                             std::vector<Neighbor>& heap, SearchStats& stats,
                             std::uint64_t budget) const {
    ++stats.nodes_visited;
    if (stats.distance_computations >= budget) return false;
    const double d1 = metric_(query, objects_[node.vp1_id]);
    ++stats.distance_computations;
    Offer(heap, k, Neighbor{node.vp1_id, d1});
    double d2 = 0.0;
    if (node.has_vp2) {
      if (stats.distance_computations >= budget) return false;
      d2 = metric_(query, objects_[node.vp2_id]);
      ++stats.distance_computations;
      Offer(heap, k, Neighbor{node.vp2_id, d2});
    }

    if (node.is_leaf) {
      for (const LeafEntry& x : node.bucket) {
        ++stats.leaf_points_seen;
        const double r = Tau(heap, k);
        bool pass = std::abs(d1 - x.d1) <= r &&
                    (!node.has_vp2 || std::abs(d2 - x.d2) <= r);
        if (pass) {
          const std::size_t checks = std::min(
              qpath.size(), static_cast<std::size_t>(x.path_length));
          for (std::size_t j = 0; j < checks; ++j) {
            if (std::abs(qpath[j] - path_pool_[x.path_offset + j]) > r) {
              pass = false;
              break;
            }
          }
        }
        if (!pass) {
          ++stats.leaf_points_filtered;
          continue;
        }
        if (stats.distance_computations >= budget) return false;
        const double d = metric_(query, objects_[x.id]);
        ++stats.distance_computations;
        Offer(heap, k, Neighbor{x.id, d});
      }
      return true;
    }

    const std::size_t p =
        static_cast<std::size_t>(options_.num_path_distances);
    std::size_t pushed = 0;
    if (qpath.size() < p) {
      qpath.push_back(d1);
      ++pushed;
      if (qpath.size() < p) {
        qpath.push_back(d2);
        ++pushed;
      }
    }
    struct Ranked {
      double bound;
      std::size_t child;
    };
    const std::size_t m = static_cast<std::size_t>(options_.order);
    std::vector<Ranked> ranked;
    ranked.reserve(m * m);
    for (std::size_t g = 0; g < m; ++g) {
      const double b1 =
          std::max({0.0, node.lower1[g] - d1, d1 - node.upper1[g]});
      for (std::size_t s = 0; s < m; ++s) {
        const std::size_t c = g * m + s;
        if (node.children[c] == nullptr) continue;
        const double b2 =
            std::max({0.0, node.lower2[c] - d2, d2 - node.upper2[c]});
        ranked.push_back(Ranked{std::max(b1, b2), c});
      }
    }
    std::sort(ranked.begin(), ranked.end(),
              [](const Ranked& a, const Ranked& b) { return a.bound < b.bound; });
    bool alive = true;
    for (const Ranked& r : ranked) {
      if (r.bound > Tau(heap, k)) break;
      alive = KnnSearchNodeBudgeted(*node.children[r.child], query, k, qpath,
                                    heap, stats, budget);
      if (!alive) break;
    }
    qpath.resize(qpath.size() - pushed);
    return alive;
  }

  void CollectStats(const Node& node, std::size_t depth,
                    TreeStats& stats) const {
    stats.height = std::max(stats.height, depth);
    stats.num_vantage_points += node.has_vp2 ? 2 : 1;
    if (node.is_leaf) {
      ++stats.num_leaf_nodes;
      stats.num_leaf_points += node.bucket.size();
      return;
    }
    ++stats.num_internal_nodes;
    for (const auto& child : node.children) {
      if (child != nullptr) CollectStats(*child, depth + 1, stats);
    }
  }

  static void MergeStats(SearchStats* out, const SearchStats& in) {
    MergeSearchStats(out, in);
  }

  std::vector<Object> objects_;
  Metric metric_;
  Options options_;
  std::unique_ptr<Node> root_;
  std::vector<double> path_pool_;
  std::uint64_t construction_distances_ = 0;
};

}  // namespace mvp::core

#endif  // MVPTREE_CORE_MVP_TREE_H_

#ifndef MVPTREE_CORE_GENERALIZED_MVP_TREE_H_
#define MVPTREE_CORE_GENERALIZED_MVP_TREE_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "common/query.h"
#include "common/rng.h"
#include "common/status.h"
#include "metric/metric.h"
#include "vptree/vp_select.h"

/// \file
/// The §4.2 generalization the paper sketches but does not evaluate: "The
/// mvp-tree construction can be modified easily so that more than 2 vantage
/// points can be kept in one node. Also, higher fanouts at the internal
/// nodes are also possible, and may be more favorable in most cases."
///
/// GeneralizedMvpTree keeps `v` vantage points per node (fanout m^v). v = 2
/// recovers the paper's mvp-tree (construction order of vantage points
/// differs slightly: here every subsequent vantage point is the farthest
/// point from the previous one, the rule §4.2 justifies for leaves). v = 1
/// is an m-way vp-tree *plus* the mvp-tree's stored leaf distances — the
/// configuration that isolates Observation 2 (pre-computed distances) from
/// Observation 1 (shared vantage points); bench/abl_vps_per_node uses it.
///
/// The canonical, paper-exact structure remains core::MvpTree; this class
/// exists for the v sweep and mirrors its API (range, k-NN, stats).

namespace mvp::core {

template <typename Object, metric::MetricFor<Object> Metric>
class GeneralizedMvpTree {
 public:
  struct Options {
    int order = 3;             ///< m: partitions per vantage point
    int vantage_points = 2;    ///< v: vantage points per node (fanout m^v)
    int leaf_capacity = 80;    ///< k
    int num_path_distances = 5;///< p
    vptree::VpSelectOptions selection;  ///< first-vantage-point picker
    std::uint64_t seed = 0;
  };

  static Result<GeneralizedMvpTree> Build(std::vector<Object> objects,
                                          Metric metric,
                                          const Options& options = Options{}) {
    if (options.order < 2) {
      return Status::InvalidArgument("order (m) must be >= 2");
    }
    if (options.vantage_points < 1 || options.vantage_points > 8) {
      return Status::InvalidArgument("vantage points per node must be 1..8");
    }
    if (options.leaf_capacity < 1) {
      return Status::InvalidArgument("leaf capacity (k) must be >= 1");
    }
    if (options.num_path_distances < 0) {
      return Status::InvalidArgument("path distances (p) must be >= 0");
    }
    const double fanout = std::pow(options.order, options.vantage_points);
    if (fanout > 4096) {
      return Status::InvalidArgument("fanout m^v too large (> 4096)");
    }
    GeneralizedMvpTree tree(std::move(objects), std::move(metric), options);
    tree.BuildTree();
    return tree;
  }

  /// All objects within `radius` of `query`, sorted by distance then id.
  std::vector<Neighbor> RangeSearch(const Object& query, double radius,
                                    SearchStats* stats = nullptr) const {
    MVP_DCHECK(radius >= 0);
    std::vector<Neighbor> result;
    SearchStats local;
    if (root_ != nullptr) {
      std::vector<double> qpath;
      qpath.reserve(static_cast<std::size_t>(options_.num_path_distances));
      RangeSearchNode(*root_, query, radius, qpath, result, local);
    }
    std::sort(result.begin(), result.end(), NeighborLess);
    if (stats != nullptr) Merge(stats, local);
    return result;
  }

  /// The k nearest objects (shrinking-radius branch-and-bound).
  std::vector<Neighbor> KnnSearch(const Object& query, std::size_t k,
                                  SearchStats* stats = nullptr) const {
    std::vector<Neighbor> heap;
    SearchStats local;
    if (root_ != nullptr && k > 0) {
      std::vector<double> qpath;
      qpath.reserve(static_cast<std::size_t>(options_.num_path_distances));
      KnnSearchNode(*root_, query, k, qpath, heap, local);
    }
    std::sort_heap(heap.begin(), heap.end(), NeighborLess);
    if (stats != nullptr) Merge(stats, local);
    return heap;
  }

  std::size_t size() const { return objects_.size(); }
  const Object& object(std::size_t id) const {
    MVP_DCHECK(id < objects_.size());
    return objects_[id];
  }
  const Options& options() const { return options_; }

  TreeStats Stats() const {
    TreeStats stats;
    stats.construction_distance_computations = construction_distances_;
    if (root_ != nullptr) CollectStats(*root_, 1, stats);
    return stats;
  }

 private:
  struct LeafEntry {
    std::size_t id = 0;
    std::uint32_t d_offset = 0;     ///< slice of leaf-vp distances in pool
    std::uint32_t d_length = 0;     ///< == number of leaf vantage points
    std::uint32_t path_offset = 0;  ///< slice of ancestor PATH distances
    std::uint32_t path_length = 0;
  };

  struct Node {
    bool is_leaf = false;
    std::vector<std::size_t> vp_ids;  // v' <= v vantage points
    // Internal: per vantage-point level l, shell bounds for each of the
    // m^(l+1) partition prefixes.
    std::vector<std::vector<double>> lower, upper;
    std::vector<std::unique_ptr<Node>> children;  // m^v
    std::vector<LeafEntry> bucket;
  };

  /// Construction working entry: distances to the current node's vantage
  /// points plus the accumulated PATH.
  struct Entry {
    std::size_t id = 0;
    std::vector<double> dists;  // size v while partitioning a node
    std::vector<double> path;
  };

  GeneralizedMvpTree(std::vector<Object> objects, Metric metric,
                     const Options& options)
      : objects_(std::move(objects)),
        metric_(std::move(metric)),
        options_(options) {}

  double Distance(const Object& a, const Object& b) {
    ++construction_distances_;
    return metric_(a, b);
  }

  void BuildTree() {
    Rng rng(options_.seed);
    std::vector<Entry> entries(objects_.size());
    for (std::size_t i = 0; i < objects_.size(); ++i) entries[i].id = i;
    root_ = BuildNode(entries, 0, entries.size(), rng);
  }

  std::unique_ptr<Node> BuildNode(std::vector<Entry>& entries,
                                  std::size_t begin, std::size_t end,
                                  Rng& rng) {
    if (begin == end) return nullptr;
    const std::size_t count = end - begin;
    const std::size_t v = static_cast<std::size_t>(options_.vantage_points);
    const std::size_t m = static_cast<std::size_t>(options_.order);
    const std::size_t p =
        static_cast<std::size_t>(options_.num_path_distances);

    auto node = std::make_unique<Node>();

    // --- choose vantage points: first by the selection strategy, each
    // subsequent one the farthest point from the previous (the §4.2 rule).
    // Chosen points are swapped to the front [begin, begin+v').
    const std::size_t num_vps = std::min(v, count);
    for (std::size_t l = 0; l < num_vps; ++l) {
      const std::size_t range_begin = begin + l;
      std::size_t pick = range_begin;
      if (l == 0) {
        pick = vptree::SelectVantagePoint(
            range_begin, end,
            [&](std::size_t i) -> const Object& {
              return objects_[entries[i].id];
            },
            metric_, rng, options_.selection, &construction_distances_);
      } else {
        // Farthest from the previous vantage point; distances to the
        // previous vp were just computed into dists[l-1].
        for (std::size_t i = range_begin + 1; i < end; ++i) {
          if (entries[i].dists[l - 1] > entries[pick].dists[l - 1]) pick = i;
        }
      }
      std::swap(entries[range_begin], entries[pick]);
      node->vp_ids.push_back(entries[range_begin].id);
      // Distances from this vantage point to every remaining point.
      const Object& vp = objects_[node->vp_ids.back()];
      for (std::size_t i = range_begin + 1; i < end; ++i) {
        if (entries[i].dists.size() <= l) entries[i].dists.resize(num_vps);
        entries[i].dists[l] = Distance(vp, objects_[entries[i].id]);
      }
    }

    const std::size_t data_begin = begin + num_vps;
    if (count <= static_cast<std::size_t>(options_.leaf_capacity) + v) {
      // --- leaf: store exact distances to the leaf's vantage points.
      node->is_leaf = true;
      node->bucket.reserve(end - data_begin);
      for (std::size_t i = data_begin; i < end; ++i) {
        LeafEntry e;
        e.id = entries[i].id;
        e.d_offset = static_cast<std::uint32_t>(d_pool_.size());
        e.d_length = static_cast<std::uint32_t>(num_vps);
        for (std::size_t l = 0; l < num_vps; ++l) {
          d_pool_.push_back(entries[i].dists[l]);
        }
        e.path_offset = static_cast<std::uint32_t>(path_pool_.size());
        e.path_length = static_cast<std::uint32_t>(entries[i].path.size());
        path_pool_.insert(path_pool_.end(), entries[i].path.begin(),
                          entries[i].path.end());
        node->bucket.push_back(e);
      }
      return node;
    }

    // --- internal: extend PATH, then partition recursively per level.
    for (std::size_t i = data_begin; i < end; ++i) {
      for (std::size_t l = 0; l < num_vps && entries[i].path.size() < p; ++l) {
        entries[i].path.push_back(entries[i].dists[l]);
      }
    }
    node->lower.resize(v);
    node->upper.resize(v);
    std::size_t width = 1;
    for (std::size_t l = 0; l < v; ++l) {
      width *= m;
      node->lower[l].assign(width, 0.0);
      node->upper[l].assign(width, std::numeric_limits<double>::infinity());
    }
    node->children.resize(width);  // width == m^v here
    Partition(entries, data_begin, end, 0, 0, *node, rng);
    return node;
  }

  /// Splits [b, e) on distance level `l` into m groups, records the shell
  /// bounds at partition prefix `prefix`, and recurses to level l+1; at
  /// l == v the group becomes child subtree `prefix`.
  void Partition(std::vector<Entry>& entries, std::size_t b, std::size_t e,
                 std::size_t l, std::size_t prefix, Node& node, Rng& rng) {
    const std::size_t v = static_cast<std::size_t>(options_.vantage_points);
    const std::size_t m = static_cast<std::size_t>(options_.order);
    if (l == v) {
      node.children[prefix] = BuildNode(entries, b, e, rng);
      return;
    }
    std::sort(entries.begin() + static_cast<std::ptrdiff_t>(b),
              entries.begin() + static_cast<std::ptrdiff_t>(e),
              [l](const Entry& x, const Entry& y) {
                return x.dists[l] < y.dists[l];
              });
    const std::size_t points = e - b;
    double prev_cutoff = 0.0;
    for (std::size_t s = 0; s < m; ++s) {
      const std::size_t sb = b + points * s / m;
      const std::size_t se = b + points * (s + 1) / m;
      const std::size_t idx = prefix * m + s;
      if (sb < se) {
        // Paper-style cutoff bounds: previous sibling's max below, own max
        // above, open at the ends.
        node.lower[l][idx] = s == 0 ? 0.0 : prev_cutoff;
        node.upper[l][idx] = s + 1 == m
                                 ? std::numeric_limits<double>::infinity()
                                 : entries[se - 1].dists[l];
        prev_cutoff = entries[se - 1].dists[l];
      }
      Partition(entries, sb, se, l + 1, idx, node, rng);
    }
  }

  // ---------------------------------------------------------------- search

  static bool Intersects(double d, double r, double lo, double hi) {
    return d - r <= hi && d + r >= lo;
  }

  void RangeSearchNode(const Node& node, const Object& query, double radius,
                       std::vector<double>& qpath,
                       std::vector<Neighbor>& result,
                       SearchStats& stats) const {
    ++stats.nodes_visited;
    std::vector<double> dq(node.vp_ids.size());
    for (std::size_t l = 0; l < node.vp_ids.size(); ++l) {
      dq[l] = metric_(query, objects_[node.vp_ids[l]]);
      ++stats.distance_computations;
      if (dq[l] <= radius) result.push_back(Neighbor{node.vp_ids[l], dq[l]});
    }
    if (node.is_leaf) {
      for (const LeafEntry& x : node.bucket) {
        ++stats.leaf_points_seen;
        bool pass = true;
        for (std::size_t l = 0; l < x.d_length && pass; ++l) {
          pass = std::abs(dq[l] - d_pool_[x.d_offset + l]) <= radius;
        }
        for (std::size_t j = 0; pass && j < x.path_length; ++j) {
          pass = std::abs(qpath[j] - path_pool_[x.path_offset + j]) <= radius;
        }
        if (!pass) {
          ++stats.leaf_points_filtered;
          continue;
        }
        const double d = metric_(query, objects_[x.id]);
        ++stats.distance_computations;
        if (d <= radius) result.push_back(Neighbor{x.id, d});
      }
      return;
    }
    const std::size_t p =
        static_cast<std::size_t>(options_.num_path_distances);
    std::size_t pushed = 0;
    for (std::size_t l = 0; l < dq.size() && qpath.size() < p; ++l) {
      qpath.push_back(dq[l]);
      ++pushed;
    }
    DescendRange(node, query, radius, dq, 0, 0, qpath, result, stats);
    qpath.resize(qpath.size() - pushed);
  }

  void DescendRange(const Node& node, const Object& query, double radius,
                    const std::vector<double>& dq, std::size_t l,
                    std::size_t prefix, std::vector<double>& qpath,
                    std::vector<Neighbor>& result, SearchStats& stats) const {
    const std::size_t v = static_cast<std::size_t>(options_.vantage_points);
    const std::size_t m = static_cast<std::size_t>(options_.order);
    if (l == v) {
      if (node.children[prefix] != nullptr) {
        RangeSearchNode(*node.children[prefix], query, radius, qpath, result,
                        stats);
      }
      return;
    }
    for (std::size_t s = 0; s < m; ++s) {
      const std::size_t idx = prefix * m + s;
      if (!Intersects(dq[l], radius, node.lower[l][idx], node.upper[l][idx])) {
        continue;
      }
      DescendRange(node, query, radius, dq, l + 1, idx, qpath, result, stats);
    }
  }

  static double Tau(const std::vector<Neighbor>& heap, std::size_t k) {
    return heap.size() < k ? std::numeric_limits<double>::infinity()
                           : heap.front().distance;
  }

  static void Offer(std::vector<Neighbor>& heap, std::size_t k, Neighbor n) {
    if (heap.size() < k) {
      heap.push_back(n);
      std::push_heap(heap.begin(), heap.end(), NeighborLess);
    } else if (NeighborLess(n, heap.front())) {
      std::pop_heap(heap.begin(), heap.end(), NeighborLess);
      heap.back() = n;
      std::push_heap(heap.begin(), heap.end(), NeighborLess);
    }
  }

  void KnnSearchNode(const Node& node, const Object& query, std::size_t k,
                     std::vector<double>& qpath, std::vector<Neighbor>& heap,
                     SearchStats& stats) const {
    ++stats.nodes_visited;
    std::vector<double> dq(node.vp_ids.size());
    for (std::size_t l = 0; l < node.vp_ids.size(); ++l) {
      dq[l] = metric_(query, objects_[node.vp_ids[l]]);
      ++stats.distance_computations;
      Offer(heap, k, Neighbor{node.vp_ids[l], dq[l]});
    }
    if (node.is_leaf) {
      for (const LeafEntry& x : node.bucket) {
        ++stats.leaf_points_seen;
        const double r = Tau(heap, k);
        bool pass = true;
        for (std::size_t l = 0; l < x.d_length && pass; ++l) {
          pass = std::abs(dq[l] - d_pool_[x.d_offset + l]) <= r;
        }
        for (std::size_t j = 0; pass && j < x.path_length; ++j) {
          pass = std::abs(qpath[j] - path_pool_[x.path_offset + j]) <= r;
        }
        if (!pass) {
          ++stats.leaf_points_filtered;
          continue;
        }
        const double d = metric_(query, objects_[x.id]);
        ++stats.distance_computations;
        Offer(heap, k, Neighbor{x.id, d});
      }
      return;
    }
    const std::size_t p =
        static_cast<std::size_t>(options_.num_path_distances);
    std::size_t pushed = 0;
    for (std::size_t l = 0; l < dq.size() && qpath.size() < p; ++l) {
      qpath.push_back(dq[l]);
      ++pushed;
    }
    // Rank all m^v children by their combined lower bound.
    struct Ranked {
      double bound;
      std::size_t child;
    };
    const std::size_t v = static_cast<std::size_t>(options_.vantage_points);
    const std::size_t m = static_cast<std::size_t>(options_.order);
    std::vector<Ranked> ranked;
    ranked.reserve(node.children.size());
    for (std::size_t c = 0; c < node.children.size(); ++c) {
      if (node.children[c] == nullptr) continue;
      double bound = 0.0;
      std::size_t prefix = c;
      // Decompose the child index into per-level digits (most significant
      // digit = level 0).
      for (std::size_t l = v; l-- > 0;) {
        const std::size_t idx = prefix;
        bound = std::max(bound,
                         std::max({0.0, node.lower[l][idx] - dq[l],
                                   dq[l] - node.upper[l][idx]}));
        prefix /= m;
      }
      ranked.push_back(Ranked{bound, c});
    }
    std::sort(ranked.begin(), ranked.end(),
              [](const Ranked& a, const Ranked& b) { return a.bound < b.bound; });
    for (const Ranked& r : ranked) {
      if (r.bound > Tau(heap, k)) break;
      KnnSearchNode(*node.children[r.child], query, k, qpath, heap, stats);
    }
    qpath.resize(qpath.size() - pushed);
  }

  void CollectStats(const Node& node, std::size_t depth,
                    TreeStats& stats) const {
    stats.height = std::max(stats.height, depth);
    stats.num_vantage_points += node.vp_ids.size();
    if (node.is_leaf) {
      ++stats.num_leaf_nodes;
      stats.num_leaf_points += node.bucket.size();
      return;
    }
    ++stats.num_internal_nodes;
    for (const auto& child : node.children) {
      if (child != nullptr) CollectStats(*child, depth + 1, stats);
    }
  }

  static void Merge(SearchStats* out, const SearchStats& in) {
    out->distance_computations += in.distance_computations;
    out->nodes_visited += in.nodes_visited;
    out->leaf_points_seen += in.leaf_points_seen;
    out->leaf_points_filtered += in.leaf_points_filtered;
  }

  std::vector<Object> objects_;
  Metric metric_;
  Options options_;
  std::unique_ptr<Node> root_;
  std::vector<double> d_pool_;
  std::vector<double> path_pool_;
  std::uint64_t construction_distances_ = 0;
};

}  // namespace mvp::core

#endif  // MVPTREE_CORE_GENERALIZED_MVP_TREE_H_

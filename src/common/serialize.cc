#include "common/serialize.h"

#include <cstdio>

#include "fault/fault_fs.h"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#endif

namespace mvp {

Status BinaryReader::ReadString(std::string* out) {
  std::uint64_t size = 0;
  MVP_RETURN_NOT_OK(Read<std::uint64_t>(&size));
  if (size > size_ - pos_) {
    return Status::Corruption("string length exceeds remaining buffer");
  }
  out->assign(reinterpret_cast<const char*>(data_ + pos_),
              static_cast<std::size_t>(size));
  pos_ += static_cast<std::size_t>(size);
  return Status::OK();
}

Status WriteFile(const std::string& path,
                 const std::vector<std::uint8_t>& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot open for write: " + path);
  const std::size_t written = bytes.empty()
                                  ? 0
                                  : std::fwrite(bytes.data(), 1, bytes.size(), f);
  const int close_rc = std::fclose(f);
  if (written != bytes.size() || close_rc != 0) {
    return Status::IOError("short write: " + path);
  }
  return Status::OK();
}

#if defined(__unix__) || defined(__APPLE__)

namespace {

/// fsyncs the directory containing `path` so a just-performed rename in it
/// survives a crash. Best-effort: some filesystems reject directory fsync,
/// so error returns are ignored — but the syscalls still go through the
/// fault::fs seam (detail: the directory path) so crash drills can simulate
/// dying between the rename and the directory flush, and so the
/// tools/lint/ syscall-seam check holds repo-wide.
void SyncParentDirectory(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int fd = fault::fs::Open(dir.c_str(), O_RDONLY, 0);
  if (fd < 0) return;
  fault::fs::Fsync(fd, dir.c_str());
  fault::fs::Close(fd, dir.c_str());
}

}  // namespace

Status WriteFileAtomic(const std::string& path,
                       const std::vector<std::uint8_t>& bytes) {
  // Every syscall goes through the fault::fs seam so tests can inject
  // ENOSPC, short writes, fsync failure, rename failure, or a crash at any
  // point of the commit (see docs/fault_injection.md).
  const std::string tmp = path + ".tmp";
  const int fd =
      fault::fs::Open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Status::IOError("cannot open for write: " + tmp);
  std::size_t written = 0;
  while (written < bytes.size()) {
    const long n = fault::fs::Write(fd, bytes.data() + written,
                                    bytes.size() - written, tmp.c_str());
    if (n < 0) {
      fault::fs::Close(fd, tmp.c_str());
      fault::fs::Remove(tmp.c_str());
      return Status::IOError("write failed: " + tmp);
    }
    written += static_cast<std::size_t>(n);
  }
  // Data must be on stable storage BEFORE the rename publishes the file;
  // otherwise a crash could leave a renamed-but-empty file.
  if (fault::fs::Fsync(fd, tmp.c_str()) != 0 ||
      fault::fs::Close(fd, tmp.c_str()) != 0) {
    fault::fs::Remove(tmp.c_str());
    return Status::IOError("fsync/close failed: " + tmp);
  }
  if (fault::fs::Rename(tmp.c_str(), path.c_str()) != 0) {
    fault::fs::Remove(tmp.c_str());
    return Status::IOError("rename failed: " + path);
  }
  SyncParentDirectory(path);
  return Status::OK();
}

#else  // no POSIX fsync: best-effort write + rename

Status WriteFileAtomic(const std::string& path,
                       const std::vector<std::uint8_t>& bytes) {
  const std::string tmp = path + ".tmp";
  MVP_RETURN_NOT_OK(WriteFile(tmp, bytes));
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IOError("rename failed: " + path);
  }
  return Status::OK();
}

#endif

Result<std::vector<std::uint8_t>> ReadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open for read: " + path);
  std::vector<std::uint8_t> bytes;
  std::uint8_t chunk[1 << 16];
  std::size_t got = 0;
  while ((got = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    bytes.insert(bytes.end(), chunk, chunk + got);
  }
  const bool had_error = std::ferror(f) != 0;
  std::fclose(f);
  if (had_error) return Status::IOError("read error: " + path);
  return bytes;
}

}  // namespace mvp

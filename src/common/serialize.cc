#include "common/serialize.h"

#include <cstdio>

namespace mvp {

Status BinaryReader::ReadString(std::string* out) {
  std::uint64_t size = 0;
  MVP_RETURN_NOT_OK(Read<std::uint64_t>(&size));
  if (size > size_ - pos_) {
    return Status::Corruption("string length exceeds remaining buffer");
  }
  out->assign(reinterpret_cast<const char*>(data_ + pos_),
              static_cast<std::size_t>(size));
  pos_ += static_cast<std::size_t>(size);
  return Status::OK();
}

Status WriteFile(const std::string& path,
                 const std::vector<std::uint8_t>& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot open for write: " + path);
  const std::size_t written = bytes.empty()
                                  ? 0
                                  : std::fwrite(bytes.data(), 1, bytes.size(), f);
  const int close_rc = std::fclose(f);
  if (written != bytes.size() || close_rc != 0) {
    return Status::IOError("short write: " + path);
  }
  return Status::OK();
}

Result<std::vector<std::uint8_t>> ReadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open for read: " + path);
  std::vector<std::uint8_t> bytes;
  std::uint8_t chunk[1 << 16];
  std::size_t got = 0;
  while ((got = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    bytes.insert(bytes.end(), chunk, chunk + got);
  }
  const bool had_error = std::ferror(f) != 0;
  std::fclose(f);
  if (had_error) return Status::IOError("read error: " + path);
  return bytes;
}

}  // namespace mvp

#include "common/rng.h"

#include <numeric>

namespace mvp {

std::vector<std::size_t> Rng::SampleIndices(std::size_t n, std::size_t count) {
  if (count >= n) {
    std::vector<std::size_t> all(n);
    std::iota(all.begin(), all.end(), std::size_t{0});
    Shuffle(all);
    return all;
  }
  // Partial Fisher-Yates: after `count` swap steps the head holds a uniform
  // sample without replacement.
  std::vector<std::size_t> pool(n);
  std::iota(pool.begin(), pool.end(), std::size_t{0});
  for (std::size_t i = 0; i < count; ++i) {
    std::swap(pool[i], pool[i + NextIndex(n - i)]);
  }
  pool.resize(count);
  return pool;
}

}  // namespace mvp

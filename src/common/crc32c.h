#ifndef MVPTREE_COMMON_CRC32C_H_
#define MVPTREE_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>

/// \file
/// CRC32C (Castagnoli, polynomial 0x1EDC6F41) — the checksum used by the
/// snapshot container format (src/snapshot/) to surface truncation and
/// bit-rot as Status::Corruption instead of undefined behaviour. Chosen
/// over plain CRC32 for its better error-detection properties on storage
/// payloads and because it is the de-facto standard for on-disk formats
/// (iSCSI, ext4, LevelDB/RocksDB, Snappy framing).
///
/// The implementation is portable slice-by-8 table lookup (~1 byte/cycle);
/// hardware CRC32 instructions would be faster but the snapshot paths are
/// dominated by serialization and I/O, not checksumming.

namespace mvp {

/// CRC32C of `data[0..size)`. Equals Extend(0, data, size).
std::uint32_t Crc32c(const void* data, std::size_t size);

/// Extends a running CRC32C with more bytes: streaming/chunked callers
/// feed pieces in order and get the same value as one whole-buffer call.
std::uint32_t Crc32cExtend(std::uint32_t crc, const void* data,
                           std::size_t size);

}  // namespace mvp

#endif  // MVPTREE_COMMON_CRC32C_H_

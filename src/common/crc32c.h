#ifndef MVPTREE_COMMON_CRC32C_H_
#define MVPTREE_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>

/// \file
/// CRC32C (Castagnoli, polynomial 0x1EDC6F41) — the checksum used by the
/// snapshot container format (src/snapshot/) to surface truncation and
/// bit-rot as Status::Corruption instead of undefined behaviour. Chosen
/// over plain CRC32 for its better error-detection properties on storage
/// payloads and because it is the de-facto standard for on-disk formats
/// (iSCSI, ext4, LevelDB/RocksDB, Snappy framing).
///
/// The implementation dispatches at runtime: on x86-64 CPUs with SSE4.2
/// the native CRC32 instruction is used, with large buffers split into
/// three interleaved lanes to hide the instruction's latency behind its
/// single-cycle throughput (it keeps the flat snapshot open path, which is
/// pure checksum + validation, out of the checksum's shadow); everywhere
/// else a portable slice-by-8 table fallback (~1 byte/cycle) produces
/// identical values.

namespace mvp {

/// CRC32C of `data[0..size)`. Equals Extend(0, data, size).
std::uint32_t Crc32c(const void* data, std::size_t size);

/// Extends a running CRC32C with more bytes: streaming/chunked callers
/// feed pieces in order and get the same value as one whole-buffer call.
std::uint32_t Crc32cExtend(std::uint32_t crc, const void* data,
                           std::size_t size);

/// Combines two independently computed CRCs: given crc1 = Crc32c(A) and
/// crc2 = Crc32c(B), returns Crc32c(A ++ B) in O(log len2) time (zlib's
/// GF(2) matrix method). Lets callers checksum disjoint blocks of one
/// buffer on separate threads and stitch the block CRCs into the exact
/// whole-buffer value — the snapshot load path fingerprints multi-megabyte
/// containers this way.
std::uint32_t Crc32cCombine(std::uint32_t crc1, std::uint32_t crc2,
                            std::size_t len2);

}  // namespace mvp

#endif  // MVPTREE_COMMON_CRC32C_H_

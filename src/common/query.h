#ifndef MVPTREE_COMMON_QUERY_H_
#define MVPTREE_COMMON_QUERY_H_

#include <cstdint>
#include <vector>

/// \file
/// Result and instrumentation types shared by every index structure.

namespace mvp {

/// One query answer: the id a point was inserted with (its index in the
/// vector passed to Build) and its exact distance to the query object.
struct Neighbor {
  std::size_t id = 0;
  double distance = 0.0;

  friend bool operator==(const Neighbor&, const Neighbor&) = default;
};

/// Deterministic result order: by distance, ties by id.
inline bool NeighborLess(const Neighbor& a, const Neighbor& b) {
  if (a.distance != b.distance) return a.distance < b.distance;
  return a.id < b.id;
}

/// Per-query instrumentation, filled by the search routines when a non-null
/// pointer is supplied. `distance_computations` is the paper's cost measure
/// and always equals the number of metric invocations the query performed.
struct SearchStats {
  std::uint64_t distance_computations = 0;
  std::uint64_t nodes_visited = 0;       ///< internal + leaf nodes entered
  std::uint64_t leaf_points_seen = 0;    ///< leaf points considered
  std::uint64_t leaf_points_filtered = 0;///< rejected by stored distances
                                         ///< without a distance computation
};

/// Structural statistics of a built tree.
struct TreeStats {
  std::size_t num_internal_nodes = 0;
  std::size_t num_leaf_nodes = 0;
  std::size_t num_vantage_points = 0;  ///< data points used as vantage points
  std::size_t num_leaf_points = 0;     ///< data points stored in leaves
  std::size_t height = 0;              ///< nodes on the longest root-leaf path
  std::uint64_t construction_distance_computations = 0;
};

}  // namespace mvp

#endif  // MVPTREE_COMMON_QUERY_H_

#ifndef MVPTREE_COMMON_RNG_H_
#define MVPTREE_COMMON_RNG_H_

#include <cstdint>
#include <vector>

#include "common/macros.h"

/// \file
/// Deterministic, platform-stable pseudo-random generation.
///
/// The paper's experiments average over "4 different runs ... where a
/// different seed (for the random function used to pick vantage points) is
/// used in each run" (§5.2). std::mt19937 + std::uniform_real_distribution is
/// not bit-stable across standard libraries, so the reproduction uses its own
/// xoshiro256** generator seeded via splitmix64 — identical streams on every
/// platform, which makes dataset generation and experiment tables exactly
/// reproducible.

namespace mvp {

/// splitmix64 step: used to expand a 64-bit seed into generator state.
inline std::uint64_t SplitMix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0 (Blackman & Vigna), public-domain algorithm,
/// reimplemented here. Fast, 256-bit state, passes BigCrush.
class Rng {
 public:
  /// Seeds the full 256-bit state from a single 64-bit seed via splitmix64.
  explicit Rng(std::uint64_t seed = 0) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = SplitMix64(sm);
  }

  /// Next raw 64-bit value.
  std::uint64_t NextU64() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 random bits.
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    MVP_DCHECK(lo <= hi);
    return lo + (hi - lo) * NextDouble();
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method
  /// simplified to rejection sampling on the top bits).
  std::uint64_t NextBounded(std::uint64_t bound) {
    MVP_DCHECK(bound > 0);
    // Rejection sampling: draw until the value falls in the largest multiple
    // of `bound` that fits in 64 bits.
    const std::uint64_t threshold = (0ULL - bound) % bound;
    for (;;) {
      const std::uint64_t r = NextU64();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer index in [0, n). Precondition: n > 0.
  std::size_t NextIndex(std::size_t n) {
    return static_cast<std::size_t>(NextBounded(n));
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::swap(items[i - 1], items[NextIndex(i)]);
    }
  }

  /// Draws `count` distinct indices from [0, n); count may exceed n, in which
  /// case all n indices are returned. Order is random.
  std::vector<std::size_t> SampleIndices(std::size_t n, std::size_t count);

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace mvp

#endif  // MVPTREE_COMMON_RNG_H_

#ifndef MVPTREE_COMMON_SERIALIZE_H_
#define MVPTREE_COMMON_SERIALIZE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

#include "common/status.h"

/// \file
/// Minimal versioned little-endian binary serialization used by the index
/// save/load paths. Writers append to an in-memory byte buffer; readers
/// validate every read against the buffer bounds and surface Corruption
/// statuses instead of crashing on truncated/garbage input.

namespace mvp {

/// Appends primitive values and byte blocks to a growable byte buffer.
class BinaryWriter {
 public:
  /// Little-endian fixed-width append. Only arithmetic types.
  template <typename T>
  void Write(T value) {
    static_assert(std::is_arithmetic_v<T>);
    // All supported build targets are little-endian; a static_assert-like
    // runtime check lives in serialize.cc (VerifyLittleEndian).
    // resize+memcpy rather than a pointer-range insert: GCC 12 raises
    // -Wnonnull false positives inside vector::_M_range_insert<unsigned
    // char*> clones, so that template is kept uninstantiated.
    const std::size_t base = buffer_.size();
    buffer_.resize(base + sizeof(T));
    std::memcpy(buffer_.data() + base, &value, sizeof(T));
  }

  /// Length-prefixed (u64) byte string.
  void WriteBytes(const void* data, std::size_t size) {
    Write<std::uint64_t>(size);
    if (size == 0) return;  // an empty string's data() may be null
    const std::size_t base = buffer_.size();
    buffer_.resize(base + size);
    std::memcpy(buffer_.data() + base, data, size);
  }

  void WriteString(const std::string& s) { WriteBytes(s.data(), s.size()); }

  /// Length-prefixed vector of arithmetic values.
  template <typename T>
  void WriteVector(const std::vector<T>& values) {
    static_assert(std::is_arithmetic_v<T>);
    Write<std::uint64_t>(values.size());
    for (const T& v : values) Write<T>(v);
  }

  const std::vector<std::uint8_t>& buffer() const { return buffer_; }
  std::vector<std::uint8_t> TakeBuffer() { return std::move(buffer_); }

 private:
  std::vector<std::uint8_t> buffer_;
};

/// Bounds-checked sequential reader over a byte span.
class BinaryReader {
 public:
  BinaryReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit BinaryReader(const std::vector<std::uint8_t>& buffer)
      : BinaryReader(buffer.data(), buffer.size()) {}

  /// Reads one little-endian fixed-width value into *out.
  template <typename T>
  Status Read(T* out) {
    static_assert(std::is_arithmetic_v<T>);
    if (size_ - pos_ < sizeof(T)) {
      return Status::Corruption("buffer truncated reading fixed value");
    }
    std::memcpy(out, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return Status::OK();
  }

  Status ReadString(std::string* out);

  /// Reads the u64 length prefix of a sequence of `element_size`-byte items
  /// and validates it against the remaining buffer BEFORE the caller
  /// allocates anything: an adversarial length near SIZE_MAX fails here as
  /// Corruption instead of triggering a multi-gigabyte resize. The check
  /// divides rather than multiplies, so it cannot itself overflow.
  Status ReadLengthPrefix(std::size_t element_size, std::uint64_t* count) {
    MVP_DCHECK(element_size > 0);
    MVP_RETURN_NOT_OK(Read<std::uint64_t>(count));
    if (*count > (size_ - pos_) / element_size) {
      return Status::Corruption("length prefix exceeds remaining buffer");
    }
    return Status::OK();
  }

  /// Reads a length-prefixed vector; rejects lengths that exceed the
  /// remaining buffer (corruption guard against huge bogus allocations).
  template <typename T>
  Status ReadVector(std::vector<T>* out) {
    static_assert(std::is_arithmetic_v<T>);
    std::uint64_t count = 0;
    MVP_RETURN_NOT_OK(ReadLengthPrefix(sizeof(T), &count));
    out->resize(static_cast<std::size_t>(count));
    for (auto& v : *out) MVP_RETURN_NOT_OK(Read<T>(&v));
    return Status::OK();
  }

  std::size_t position() const { return pos_; }
  std::size_t remaining() const { return size_ - pos_; }
  bool AtEnd() const { return pos_ == size_; }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

/// Writes `bytes` to `path` directly (no tmp+rename, no fsync) — fine for
/// scratch outputs whose loss on crash is acceptable. Durable multi-file
/// artifacts (the snapshot store) use WriteFileAtomic instead.
Status WriteFile(const std::string& path, const std::vector<std::uint8_t>& bytes);

/// Crash-safe write: writes to `path + ".tmp"`, flushes the data to stable
/// storage (fsync), atomically renames over `path`, then fsyncs the parent
/// directory so the rename itself is durable. A kill at any point leaves
/// either the previous file or the complete new one — never a torn mix.
/// On platforms without POSIX fsync this degrades to write + rename.
Status WriteFileAtomic(const std::string& path,
                       const std::vector<std::uint8_t>& bytes);

/// Reads the whole file at `path`.
Result<std::vector<std::uint8_t>> ReadFile(const std::string& path);

}  // namespace mvp

#endif  // MVPTREE_COMMON_SERIALIZE_H_

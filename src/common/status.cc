#include "common/status.h"

namespace mvp {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid argument";
    case StatusCode::kNotFound:
      return "not found";
    case StatusCode::kIOError:
      return "io error";
    case StatusCode::kCorruption:
      return "corruption";
    case StatusCode::kNotSupported:
      return "not supported";
    case StatusCode::kDeadlineExceeded:
      return "deadline exceeded";
    case StatusCode::kResourceExhausted:
      return "resource exhausted";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace mvp

#ifndef MVPTREE_COMMON_STATUS_H_
#define MVPTREE_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "common/macros.h"

/// \file
/// Arrow/RocksDB-style error model: `Status` for fallible operations with no
/// payload, `Result<T>` for fallible operations producing a value. The
/// library does not throw exceptions across its public API.

namespace mvp {

/// Machine-readable category of a failure.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,  ///< caller passed an unusable parameter
  kNotFound = 2,         ///< requested entity does not exist
  kIOError = 3,          ///< serialization / file problem
  kCorruption = 4,       ///< persisted bytes fail validation
  kNotSupported = 5,     ///< valid request this build cannot satisfy
  kDeadlineExceeded = 6, ///< query shed: its deadline passed (src/serve)
  kResourceExhausted = 7, ///< load shed: admission refused the work (src/serve)
};

/// Returns the canonical lower-case name of a status code ("ok", ...).
const char* StatusCodeName(StatusCode code);

/// Outcome of a fallible operation: a code plus a human-readable message.
/// Cheap to copy in the OK case (empty message).
///
/// [[nodiscard]]: silently dropping a Status is how I/O errors turn into
/// corruption discovered three PRs later, so the compiler rejects it. The
/// rare call site that really means to ignore a failure writes
/// `(void)DoThing();` with a comment saying why ignoring is correct —
/// tools/lint/check_source.py flags `(void)` discards without one.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Factory helpers, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "ok" or "<code name>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// A value of type T or the Status explaining why it could not be produced.
/// [[nodiscard]] for the same reason as Status: an unexamined Result is an
/// unexamined failure.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a value or an error keeps call sites terse
  /// (`return value;` / `return Status::InvalidArgument(...);`).
  // NOLINTNEXTLINE(google-explicit-constructor): implicit by design (above).
  Result(T value) : repr_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor): implicit by design (above).
  Result(Status status) : repr_(std::move(status)) {
    MVP_DCHECK(!std::get<Status>(repr_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// The error, or OK if this holds a value.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }

  /// Precondition: ok().
  const T& value() const& {
    MVP_DCHECK(ok());
    return std::get<T>(repr_);
  }
  T& value() & {
    MVP_DCHECK(ok());
    return std::get<T>(repr_);
  }
  /// Moves the value out. Precondition: ok().
  T ValueOrDie() && {
    MVP_DCHECK(ok());
    return std::move(std::get<T>(repr_));
  }

 private:
  std::variant<T, Status> repr_;
};

}  // namespace mvp

#endif  // MVPTREE_COMMON_STATUS_H_

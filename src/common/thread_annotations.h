#ifndef MVPTREE_COMMON_THREAD_ANNOTATIONS_H_
#define MVPTREE_COMMON_THREAD_ANNOTATIONS_H_

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

/// \file
/// Clang Thread Safety Analysis support — the compile-time half of the
/// lock-discipline story (the runtime half is the TSAN CI job).
///
/// Two pieces:
///
///  1. `MVP_*` capability-annotation macros. Under Clang they expand to the
///     `__attribute__((...))` thread-safety attributes, so building with
///     `-Wthread-safety -Werror=thread-safety` (the
///     `MVPTREE_THREAD_SAFETY_ANALYSIS` CMake option) turns every
///     guarded-field access without the guarding lock into a compile
///     error. Under every other compiler they expand to nothing and cost
///     nothing.
///
///  2. Annotated lockable wrappers (`Mutex`, `SharedMutex`, `CondVar`,
///     `MutexLock`, ...). libstdc++'s `std::mutex` carries no capability
///     attributes, so the analysis cannot see through it; these wrappers
///     are the thinnest possible shims (LevelDB's port_stdcxx.h idiom)
///     that make lock acquisition visible to the analysis. Components in
///     the annotated directories (`src/serve/`, `src/snapshot/`,
///     `src/fault/`) must use them instead of raw `std::mutex` —
///     `tools/lint/check_source.py` enforces this.
///
/// The analysis is function-local and sound only for what is annotated:
/// a `GUARDED_BY` field is protected everywhere or the build breaks, but
/// an unannotated field is simply not checked. Annotate every field a
/// mutex protects, not just the ones that look racy.

#if defined(__clang__) && (!defined(SWIG))
#define MVP_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define MVP_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op
#endif

/// Declares a type to be a capability ("mutex", "role", ...).
#define MVP_CAPABILITY(x) MVP_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

/// Declares an RAII type whose lifetime is a critical section.
#define MVP_SCOPED_CAPABILITY MVP_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

/// Field is protected by the given capability: reads require the lock held
/// (shared or exclusive), writes require it held exclusively.
#define MVP_GUARDED_BY(x) MVP_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

/// Pointer field whose *pointee* is protected by the given capability.
#define MVP_PT_GUARDED_BY(x) MVP_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

/// Function requires the capability held (exclusively / shared) on entry,
/// and does not release it.
#define MVP_REQUIRES(...) \
  MVP_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))
#define MVP_REQUIRES_SHARED(...) \
  MVP_THREAD_ANNOTATION_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability (exclusively / shared) and holds it on
/// return.
#define MVP_ACQUIRE(...) \
  MVP_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))
#define MVP_ACQUIRE_SHARED(...) \
  MVP_THREAD_ANNOTATION_ATTRIBUTE(acquire_shared_capability(__VA_ARGS__))

/// Function releases the capability, which must be held on entry.
#define MVP_RELEASE(...) \
  MVP_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))
#define MVP_RELEASE_SHARED(...) \
  MVP_THREAD_ANNOTATION_ATTRIBUTE(release_shared_capability(__VA_ARGS__))

/// Function tries to acquire the capability; the first argument is the
/// return value that means success.
#define MVP_TRY_ACQUIRE(...) \
  MVP_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))

/// Function must NOT be called with the capability held (deadlock guard for
/// non-reentrant locks).
#define MVP_EXCLUDES(...) \
  MVP_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/// Function returns a reference to the given capability (for accessors that
/// expose the lock itself).
#define MVP_RETURN_CAPABILITY(x) \
  MVP_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

/// Escape hatch: the function's locking is deliberately invisible to the
/// analysis. Every use must carry a comment justifying why.
#define MVP_NO_THREAD_SAFETY_ANALYSIS \
  MVP_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

/// Asserts (to the analysis, not at runtime) that the capability is held.
#define MVP_ASSERT_CAPABILITY(x) \
  MVP_THREAD_ANNOTATION_ATTRIBUTE(assert_capability(x))

namespace mvp {

/// Annotated exclusive mutex: std::mutex made visible to the analysis.
class MVP_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() MVP_ACQUIRE() { mu_.lock(); }
  void Unlock() MVP_RELEASE() { mu_.unlock(); }
  bool TryLock() MVP_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// Annotated shared (reader/writer) mutex.
class MVP_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() MVP_ACQUIRE() { mu_.lock(); }
  void Unlock() MVP_RELEASE() { mu_.unlock(); }
  void LockShared() MVP_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() MVP_RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

/// RAII critical section over a Mutex (the std::lock_guard analogue).
class MVP_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) MVP_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() MVP_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// RAII shared (reader) critical section over a SharedMutex.
class MVP_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex* mu) MVP_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_->LockShared();
  }
  ~ReaderMutexLock() MVP_RELEASE() { mu_->UnlockShared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// RAII exclusive (writer) critical section over a SharedMutex.
class MVP_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex* mu) MVP_ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }
  ~WriterMutexLock() MVP_RELEASE() { mu_->Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// Condition variable over the annotated Mutex. `Wait` takes the mutex as
/// a parameter (instead of binding it at construction, the LevelDB shape)
/// because the analysis resolves the MVP_REQUIRES(mu) capability
/// expression to the caller's own lock at each call site — that is what
/// makes `cv.Wait(mu_)` inside a critical section check, while a
/// bound-member design would demand a capability (`cv.mu_`) the caller can
/// never be known to hold. As with std::condition_variable, every waiter
/// of one CondVar must pass the same Mutex. Callers keep their
/// `while (!predicate) cv.Wait(mu_);` loops in the annotated function
/// body, where the guarded-field reads of the predicate are checked.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu` and blocks until notified; `mu` is
  /// reacquired before returning (so to the analysis it is simply held
  /// across the call). Spurious wakeups happen: always wait in a
  /// predicate loop.
  void Wait(Mutex& mu) MVP_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace mvp

#endif  // MVPTREE_COMMON_THREAD_ANNOTATIONS_H_

#include "common/crc32c.h"

#include <cstring>

namespace mvp {
namespace {

/// Reflected Castagnoli polynomial.
constexpr std::uint32_t kPoly = 0x82f63b78u;

/// Eight lookup tables for slice-by-8: table[0] is the classic byte-wise
/// CRC table; table[k][b] is the CRC of byte b followed by k zero bytes.
struct Tables {
  std::uint32_t t[8][256];

  Tables() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) != 0 ? kPoly : 0u);
      }
      t[0][i] = crc;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      for (int k = 1; k < 8; ++k) {
        t[k][i] = (t[k - 1][i] >> 8) ^ t[0][t[k - 1][i] & 0xffu];
      }
    }
  }
};

const Tables& tables() {
  static const Tables instance;
  return instance;
}

std::uint32_t Crc32cExtendPortable(std::uint32_t crc,
                                   const unsigned char* p,
                                   std::size_t size) {
  const auto& tab = tables();
  crc = ~crc;
  while (size >= 8) {
    // Fold 8 bytes at once; byte-order independent (explicit shifts).
    const std::uint32_t lo = crc ^ (static_cast<std::uint32_t>(p[0]) |
                                    static_cast<std::uint32_t>(p[1]) << 8 |
                                    static_cast<std::uint32_t>(p[2]) << 16 |
                                    static_cast<std::uint32_t>(p[3]) << 24);
    crc = tab.t[7][lo & 0xffu] ^ tab.t[6][(lo >> 8) & 0xffu] ^
          tab.t[5][(lo >> 16) & 0xffu] ^ tab.t[4][lo >> 24] ^
          tab.t[3][p[4]] ^ tab.t[2][p[5]] ^ tab.t[1][p[6]] ^ tab.t[0][p[7]];
    p += 8;
    size -= 8;
  }
  while (size > 0) {
    crc = (crc >> 8) ^ tab.t[0][(crc ^ *p) & 0xffu];
    ++p;
    --size;
  }
  return ~crc;
}

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define MVP_CRC32C_HAVE_HARDWARE 1

/// SSE4.2 CRC32 instruction path — same Castagnoli polynomial and same
/// reflected bit convention as the table code, so the two implementations
/// are bit-for-bit interchangeable (tests/crc32c_test.cc pins known
/// vectors, which exercises whichever path the host selects). The target
/// attribute scopes the instruction to this function; callers dispatch at
/// runtime via __builtin_cpu_supports, so the binary still runs on CPUs
/// without SSE4.2.
__attribute__((target("sse4.2"))) std::uint32_t Crc32cExtendHardware(
    std::uint32_t crc, const unsigned char* p, std::size_t size) {
  std::uint64_t c = ~crc;
  while (size > 0 && (reinterpret_cast<std::uintptr_t>(p) & 7u) != 0) {
    c = __builtin_ia32_crc32qi(static_cast<std::uint32_t>(c), *p);
    ++p;
    --size;
  }
  // The crc32 instruction has multi-cycle latency but single-cycle
  // throughput, so one dependency chain leaves most of the unit idle. For
  // large buffers, run three independent chains over contiguous thirds
  // and stitch them with Crc32cCombine (cheap polynomial shift) — a ~2-3x
  // single-thread speedup that keeps the exact same CRC value. The cutoff
  // only needs to amortize the two combines (a couple of microseconds).
  constexpr std::size_t kLaneCut = 3 * 2048;
  if (size >= kLaneCut) {
    const std::size_t lane = (size / 3) & ~std::size_t{7};
    const unsigned char* p1 = p + lane;
    const unsigned char* p2 = p + 2 * lane;
    std::uint64_t c0 = c;
    std::uint64_t c1 = 0xffffffffu;
    std::uint64_t c2 = 0xffffffffu;
    for (std::size_t i = 0; i < lane; i += 8) {
      std::uint64_t w0, w1, w2;
      std::memcpy(&w0, p + i, sizeof(w0));
      std::memcpy(&w1, p1 + i, sizeof(w1));
      std::memcpy(&w2, p2 + i, sizeof(w2));
      c0 = __builtin_ia32_crc32di(c0, w0);
      c1 = __builtin_ia32_crc32di(c1, w1);
      c2 = __builtin_ia32_crc32di(c2, w2);
    }
    // c0 finishes Extend(crc, lane 0); lanes 1 and 2 are standalone CRCs.
    const std::uint32_t merged = Crc32cCombine(
        Crc32cCombine(~static_cast<std::uint32_t>(c0),
                      ~static_cast<std::uint32_t>(c1), lane),
        ~static_cast<std::uint32_t>(c2), lane);
    c = ~merged;
    p += 3 * lane;
    size -= 3 * lane;
  }
  while (size >= 8) {
    std::uint64_t word;
    std::memcpy(&word, p, sizeof(word));
    c = __builtin_ia32_crc32di(c, word);
    p += 8;
    size -= 8;
  }
  while (size > 0) {
    c = __builtin_ia32_crc32qi(static_cast<std::uint32_t>(c), *p);
    ++p;
    --size;
  }
  return ~static_cast<std::uint32_t>(c);
}

bool HaveHardwareCrc32c() { return __builtin_cpu_supports("sse4.2") != 0; }
#endif  // __x86_64__

}  // namespace

std::uint32_t Crc32cExtend(std::uint32_t crc, const void* data,
                           std::size_t size) {
  const auto* p = static_cast<const unsigned char*>(data);
#ifdef MVP_CRC32C_HAVE_HARDWARE
  static const bool hardware = HaveHardwareCrc32c();
  if (hardware) return Crc32cExtendHardware(crc, p, size);
#endif
  return Crc32cExtendPortable(crc, p, size);
}

std::uint32_t Crc32c(const void* data, std::size_t size) {
  return Crc32cExtend(0, data, size);
}

namespace {

/// Product of two polynomials over GF(2), reduced mod the (reflected)
/// Castagnoli polynomial. In the reflected representation bit 31 is x^0,
/// so the loop walks `a` from its x^0 coefficient down while repeatedly
/// multiplying `b` by x (a right shift with polynomial feedback).
std::uint32_t MulModPoly(std::uint32_t a, std::uint32_t b) {
  std::uint32_t product = 0;
  std::uint32_t mask = std::uint32_t{1} << 31;
  for (;;) {
    if ((a & mask) != 0) {
      product ^= b;
      if ((a & (mask - 1)) == 0) break;
    }
    mask >>= 1;
    b = (b & 1u) != 0 ? (b >> 1) ^ kPoly : b >> 1;
  }
  return product;
}

/// PowersOfX[k] = x^(2^k) mod P — built once by repeated squaring, so any
/// x^n mod P is a product of at most 32 table entries.
struct PowersOfX {
  std::uint32_t x2n[32];

  PowersOfX() {
    std::uint32_t p = std::uint32_t{1} << 30;  // x^1 (reflected: bit 30)
    x2n[0] = p;
    for (int n = 1; n < 32; ++n) x2n[n] = p = MulModPoly(p, p);
  }
};

/// x^(n * 2^k) mod P, by binary decomposition of n against the table.
std::uint32_t XPowModPoly(std::size_t n, unsigned k) {
  static const PowersOfX powers;
  std::uint32_t p = std::uint32_t{1} << 31;  // x^0 == 1
  while (n != 0) {
    if ((n & 1u) != 0) p = MulModPoly(powers.x2n[k & 31u], p);
    n >>= 1;
    ++k;
  }
  return p;
}

}  // namespace

std::uint32_t Crc32cCombine(std::uint32_t crc1, std::uint32_t crc2,
                            std::size_t len2) {
  // Appending B to A shifts A's CRC by len2 zero bytes (multiplication by
  // x^(8*len2) mod P) before xoring in B's contribution. Computing the
  // shift as a polynomial power — zlib's modern crc32_combine_op — costs
  // ~log2(len2) 32-step multiplies (about a microsecond), which is what
  // lets the hardware CRC below afford a lane merge per call.
  if (len2 == 0) return crc1;
  return MulModPoly(XPowModPoly(len2, 3), crc1) ^ crc2;
}

}  // namespace mvp

#include "common/crc32c.h"

namespace mvp {
namespace {

/// Reflected Castagnoli polynomial.
constexpr std::uint32_t kPoly = 0x82f63b78u;

/// Eight lookup tables for slice-by-8: table[0] is the classic byte-wise
/// CRC table; table[k][b] is the CRC of byte b followed by k zero bytes.
struct Tables {
  std::uint32_t t[8][256];

  Tables() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) != 0 ? kPoly : 0u);
      }
      t[0][i] = crc;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      for (int k = 1; k < 8; ++k) {
        t[k][i] = (t[k - 1][i] >> 8) ^ t[0][t[k - 1][i] & 0xffu];
      }
    }
  }
};

const Tables& tables() {
  static const Tables instance;
  return instance;
}

}  // namespace

std::uint32_t Crc32cExtend(std::uint32_t crc, const void* data,
                           std::size_t size) {
  const auto& tab = tables();
  const auto* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
  while (size >= 8) {
    // Fold 8 bytes at once; byte-order independent (explicit shifts).
    const std::uint32_t lo = crc ^ (static_cast<std::uint32_t>(p[0]) |
                                    static_cast<std::uint32_t>(p[1]) << 8 |
                                    static_cast<std::uint32_t>(p[2]) << 16 |
                                    static_cast<std::uint32_t>(p[3]) << 24);
    crc = tab.t[7][lo & 0xffu] ^ tab.t[6][(lo >> 8) & 0xffu] ^
          tab.t[5][(lo >> 16) & 0xffu] ^ tab.t[4][lo >> 24] ^
          tab.t[3][p[4]] ^ tab.t[2][p[5]] ^ tab.t[1][p[6]] ^ tab.t[0][p[7]];
    p += 8;
    size -= 8;
  }
  while (size > 0) {
    crc = (crc >> 8) ^ tab.t[0][(crc ^ *p) & 0xffu];
    ++p;
    --size;
  }
  return ~crc;
}

std::uint32_t Crc32c(const void* data, std::size_t size) {
  return Crc32cExtend(0, data, size);
}

}  // namespace mvp

#ifndef MVPTREE_COMMON_CODEC_H_
#define MVPTREE_COMMON_CODEC_H_

#include <concepts>
#include <string>
#include <vector>

#include "common/serialize.h"

/// \file
/// Object codecs: how index serialization writes/reads the stored objects.
/// An index is generic over its object type, so persistence needs a codec
/// for that type; codecs for the three bundled object types live here.

namespace mvp {

/// A codec for objects of type O: value encoding to/from the binary format.
template <typename C, typename O>
concept CodecFor = requires(const C& c, BinaryWriter& w, BinaryReader& r,
                            const O& obj, O* out) {
  { c.Write(w, obj) } -> std::same_as<void>;
  { c.Read(r, out) } -> std::same_as<Status>;
};

/// Codec for dense real vectors (metric::Vector).
struct VectorCodec {
  void Write(BinaryWriter& w, const std::vector<double>& v) const {
    w.WriteVector(v);
  }
  Status Read(BinaryReader& r, std::vector<double>* out) const {
    return r.ReadVector(out);
  }
};

/// Codec for strings.
struct StringCodec {
  void Write(BinaryWriter& w, const std::string& s) const { w.WriteString(s); }
  Status Read(BinaryReader& r, std::string* out) const {
    return r.ReadString(out);
  }
};

}  // namespace mvp

#endif  // MVPTREE_COMMON_CODEC_H_

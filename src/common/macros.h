#ifndef MVPTREE_COMMON_MACROS_H_
#define MVPTREE_COMMON_MACROS_H_

#include <cassert>
#include <cstdio>
#include <cstdlib>

/// \file
/// Project-wide helper macros: debug checks and Status propagation.

/// MVP_DCHECK(cond): precondition check, compiled out in release builds
/// (mirrors assert semantics but with a project-grep-able name).
#ifndef NDEBUG
#define MVP_DCHECK(condition)                                              \
  do {                                                                     \
    if (!(condition)) {                                                    \
      std::fprintf(stderr, "MVP_DCHECK failed at %s:%d: %s\n", __FILE__,   \
                   __LINE__, #condition);                                  \
      std::abort();                                                        \
    }                                                                      \
  } while (false)
#else
#define MVP_DCHECK(condition) \
  do {                        \
  } while (false)
#endif

/// Propagate a non-OK Status from the current function.
#define MVP_RETURN_NOT_OK(expr)              \
  do {                                       \
    ::mvp::Status _st = (expr);              \
    if (!_st.ok()) return _st;               \
  } while (false)

#endif  // MVPTREE_COMMON_MACROS_H_

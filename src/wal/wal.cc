#include "wal/wal.h"

#include <cstring>
#include <utility>

#include "common/crc32c.h"
#include "common/serialize.h"
#include "fault/failpoint.h"
#include "fault/fault_fs.h"

#if defined(MVPTREE_FAULT_FS_POSIX)
#include <fcntl.h>
#endif

namespace mvp::wal {

void EncodeRecord(const WalRecord& record, std::vector<std::uint8_t>* out) {
  BinaryWriter frame;
  frame.Write<std::uint8_t>(static_cast<std::uint8_t>(record.op));
  frame.Write<std::uint64_t>(record.seq);
  frame.Write<std::uint64_t>(record.id);
  frame.WriteBytes(record.payload.data(), record.payload.size());
  const std::vector<std::uint8_t>& body = frame.buffer();
  BinaryWriter header;
  header.Write<std::uint32_t>(static_cast<std::uint32_t>(body.size()));
  header.Write<std::uint32_t>(Crc32c(body.data(), body.size()));
  // resize+memcpy rather than a range insert — see the note on
  // BinaryWriter::Write (GCC 12 -Wnonnull false positive).
  const std::size_t base = out->size();
  out->resize(base + header.buffer().size() + body.size());
  std::memcpy(out->data() + base, header.buffer().data(),
              header.buffer().size());
  std::memcpy(out->data() + base + header.buffer().size(), body.data(),
              body.size());
}

Result<WalReadResult> ReadWal(const std::string& path) {
  WalReadResult result;
  auto bytes = ReadFile(path);
  if (!bytes.ok()) return result;  // missing file: an empty, fresh log
  const std::vector<std::uint8_t>& file = bytes.value();

  std::size_t pos = 0;
  std::uint64_t prev_seq = 0;
  while (pos < file.size()) {
    // Anything that does not parse as a complete, checksummed, well-formed
    // frame ends the valid prefix: it is a torn append, by construction the
    // suffix of the last (unacknowledged) write before a crash.
    if (file.size() - pos < 8) break;
    BinaryReader header(file.data() + pos, 8);
    std::uint32_t frame_len = 0, stored_crc = 0;
    MVP_RETURN_NOT_OK(header.Read<std::uint32_t>(&frame_len));
    MVP_RETURN_NOT_OK(header.Read<std::uint32_t>(&stored_crc));
    if (frame_len < kFrameFixedBytes || frame_len > file.size() - pos - 8) {
      break;
    }
    const std::uint8_t* body = file.data() + pos + 8;
    if (Crc32c(body, frame_len) != stored_crc) break;

    BinaryReader frame(body, frame_len);
    std::uint8_t op = 0;
    WalRecord record;
    MVP_RETURN_NOT_OK(frame.Read<std::uint8_t>(&op));
    MVP_RETURN_NOT_OK(frame.Read<std::uint64_t>(&record.seq));
    MVP_RETURN_NOT_OK(frame.Read<std::uint64_t>(&record.id));
    std::uint64_t payload_len = 0;
    MVP_RETURN_NOT_OK(frame.ReadLengthPrefix(1, &payload_len));
    if ((op != static_cast<std::uint8_t>(WalOp::kInsert) &&
         op != static_cast<std::uint8_t>(WalOp::kErase)) ||
        payload_len != frame.remaining() || record.seq <= prev_seq) {
      break;
    }
    record.op = static_cast<WalOp>(op);
    record.payload.assign(body + frame.position(),
                          body + frame.position() + payload_len);
    prev_seq = record.seq;
    result.records.push_back(std::move(record));
    pos += 8 + frame_len;
  }
  result.valid_bytes = pos;
  result.torn_tail = pos < file.size();
  return result;
}

#if defined(MVPTREE_FAULT_FS_POSIX)

Status TruncateWal(const std::string& path, std::uint64_t valid_bytes) {
  const int fd = fault::fs::Open(path.c_str(), O_WRONLY, 0);
  if (fd < 0) {
    if (valid_bytes == 0) return Status::OK();  // nothing to repair
    return Status::IOError("cannot open wal for truncation: " + path);
  }
  if (fault::fs::Ftruncate(fd, static_cast<long long>(valid_bytes),
                           path.c_str()) != 0) {
    fault::fs::Close(fd, path.c_str());
    return Status::IOError("wal truncation failed: " + path);
  }
  if (fault::fs::Fsync(fd, path.c_str()) != 0 ||
      fault::fs::Close(fd, path.c_str()) != 0) {
    return Status::IOError("wal truncation fsync failed: " + path);
  }
  return Status::OK();
}

Result<std::unique_ptr<WalWriter>> WalWriter::Open(std::string path) {
  const int fd =
      fault::fs::Open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) return Status::IOError("cannot open wal for append: " + path);
  return std::unique_ptr<WalWriter>(new WalWriter(std::move(path), fd));
}

WalWriter::WalWriter(std::string path, int fd)
    : path_(std::move(path)), fd_(fd) {}

WalWriter::~WalWriter() {
  if (fd_ >= 0) fault::fs::Close(fd_, path_.c_str());
}

Status WalWriter::Append(const WalRecord& record) {
  MutexLock lock(&mu_);
  if (failed_) return Status::IOError("wal writer is in a failed state");
  if (MVP_FAILPOINT("wal/append")) {
    return Status::IOError("injected wal append failure");
  }
  EncodeRecord(record, &pending_);
  ++pending_records_;
  last_appended_seq_ = record.seq;
  ++stats_.records_appended;
  return Status::OK();
}

Status WalWriter::Sync(std::uint64_t seq) {
  mu_.Lock();
  for (;;) {
    if (synced_seq_ >= seq) {
      mu_.Unlock();
      return Status::OK();
    }
    if (failed_) {
      mu_.Unlock();
      return Status::IOError("wal writer is in a failed state");
    }
    if (sync_in_progress_) {
      // Another thread's flush is in flight; it may well carry our records
      // (it swapped the pending buffer after our Append). Wait and re-check.
      cv_.Wait(mu_);
      continue;
    }
    // Leader: flush everything pending with one write+fsync, lock dropped.
    sync_in_progress_ = true;
    std::vector<std::uint8_t> batch = std::move(pending_);
    pending_.clear();
    const std::uint64_t batch_seq = last_appended_seq_;
    const std::uint64_t batch_records = pending_records_;
    pending_records_ = 0;
    mu_.Unlock();

    Status flushed = batch.empty() ? Status::OK() : WriteDurable(batch);

    mu_.Lock();
    sync_in_progress_ = false;
    if (flushed.ok()) {
      synced_seq_ = batch_seq;
      if (batch_records > 0) {
        ++stats_.sync_batches;
        stats_.records_synced += batch_records;
        stats_.bytes_written += batch.size();
      }
    } else {
      failed_ = true;
    }
    cv_.NotifyAll();
    if (!flushed.ok()) {
      mu_.Unlock();
      return flushed;
    }
  }
}

Status WalWriter::SyncAll() {
  std::uint64_t seq = 0;
  {
    MutexLock lock(&mu_);
    seq = last_appended_seq_;
  }
  return Sync(seq);
}

Status WalWriter::WriteDurable(const std::vector<std::uint8_t>& batch) {
  if (MVP_FAILPOINT("wal/sync")) {
    return Status::IOError("injected wal sync failure");
  }
  std::size_t written = 0;
  while (written < batch.size()) {
    const long n = fault::fs::Write(fd_, batch.data() + written,
                                    batch.size() - written, path_.c_str());
    if (n < 0) return Status::IOError("wal write failed: " + path_);
    written += static_cast<std::size_t>(n);
  }
  if (fault::fs::Fsync(fd_, path_.c_str()) != 0) {
    return Status::IOError("wal fsync failed: " + path_);
  }
  return Status::OK();
}

Status WalWriter::TruncateToEmpty() {
  MutexLock lock(&mu_);
  if (failed_) return Status::IOError("wal writer is in a failed state");
  if (!pending_.empty()) {
    return Status::InvalidArgument(
        "wal truncation requires all appended records synced first");
  }
  if (MVP_FAILPOINT("wal/truncate")) {
    return Status::IOError("injected wal truncate failure");
  }
  if (fault::fs::Ftruncate(fd_, 0, path_.c_str()) != 0 ||
      fault::fs::Fsync(fd_, path_.c_str()) != 0) {
    failed_ = true;
    return Status::IOError("wal truncation failed: " + path_);
  }
  return Status::OK();
}

WalWriterStats WalWriter::stats() const {
  MutexLock lock(&mu_);
  return stats_;
}

#endif  // MVPTREE_FAULT_FS_POSIX

}  // namespace mvp::wal

#ifndef MVPTREE_WAL_WAL_H_
#define MVPTREE_WAL_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"

/// \file
/// Write-ahead log for online index mutations (docs/online_updates.md).
///
/// The WAL is what turns the in-memory overlay (dynamic/dynamic_overlay.h)
/// into a durable index: every insert/erase is framed, checksummed, and
/// fsynced into `wal.log` BEFORE it is acknowledged, so a crash at any
/// point loses only unacknowledged mutations. Recovery replays the log
/// against the last committed snapshot generation; a checkpoint folds the
/// logged mutations into a new generation and truncates the log.
///
/// Record framing (little-endian, docs/index_format.md):
///
///   [u32 frame_len][u32 crc32c(frame)][frame]
///   frame = u8 op, u64 seq, u64 id, u64 payload_len, payload bytes
///
/// `seq` is a strictly increasing operation number; the snapshot manifest
/// records the last sequence folded into a generation, which makes replay
/// idempotent (records at or below the watermark are skipped). The payload
/// is the codec-encoded object for inserts and empty for erases — the WAL
/// layer itself is untemplated and treats payloads as opaque bytes.
///
/// Torn tails: a crash mid-append can leave a truncated or CRC-corrupt
/// final frame. ReadWal stops at the first bad frame and reports the valid
/// prefix length; recovery truncates the file there (the standard WAL tail
/// discipline — a torn tail is an unacknowledged mutation, not corruption).
///
/// Every syscall goes through the fault::fs seam, and the logical phases
/// carry their own failpoints ("wal/append", "wal/sync", "wal/truncate"),
/// so crash drills can kill the process at any point of the
/// append/commit/truncate path.

namespace mvp::wal {

/// The file name a store's log lives under, next to CURRENT.
inline constexpr const char* kWalFileName = "wal.log";

enum class WalOp : std::uint8_t {
  kInsert = 1,  ///< payload = codec-encoded object
  kErase = 2,   ///< payload empty
};

/// Fixed frame bytes before the payload: op + seq + id + payload_len.
inline constexpr std::size_t kFrameFixedBytes = 1 + 8 + 8 + 8;

struct WalRecord {
  WalOp op = WalOp::kInsert;
  std::uint64_t seq = 0;  ///< strictly increasing, 1-based
  std::uint64_t id = 0;   ///< stable object id
  std::vector<std::uint8_t> payload;
};

/// Appends one complete frame (length prefix, CRC, frame body) for
/// `record` to `*out`. Exposed for tests and the wal-dump tool.
void EncodeRecord(const WalRecord& record, std::vector<std::uint8_t>* out);

struct WalReadResult {
  std::vector<WalRecord> records;  ///< the valid prefix, in seq order
  std::uint64_t valid_bytes = 0;   ///< file prefix holding those records
  /// True when bytes after the valid prefix did not parse as a complete,
  /// checksummed frame — a torn append from a crash. Recovery truncates
  /// the file to `valid_bytes` before appending again.
  bool torn_tail = false;
};

/// Reads and validates the log at `path`. A missing file is an empty log
/// (fresh store), not an error. Frames are validated strictly: length
/// bounds, CRC32C, known op, strictly increasing seq — the first frame
/// failing any check ends the valid prefix and sets `torn_tail`.
Result<WalReadResult> ReadWal(const std::string& path);

/// Truncates the file at `path` to `valid_bytes` and fsyncs it — recovery's
/// torn-tail repair. A missing file is a no-op when `valid_bytes` is zero.
Status TruncateWal(const std::string& path, std::uint64_t valid_bytes);

struct WalWriterStats {
  std::uint64_t records_appended = 0;
  std::uint64_t records_synced = 0;
  /// fsync batches that covered at least one record. records_synced /
  /// sync_batches is the group-commit amortization factor the bench
  /// reports: under concurrent writers one fsync acknowledges many appends.
  std::uint64_t sync_batches = 0;
  std::uint64_t bytes_written = 0;
};

/// Append-only log writer with group commit.
///
/// Append buffers a frame in memory (no syscall); Sync(seq) makes every
/// record up to `seq` durable. Concurrent Sync callers elect a leader: the
/// first thread in swaps the whole pending buffer, writes it with one
/// write+fsync pair while the lock is dropped, and wakes the others —
/// whoever's records rode along returns without ever touching the disk.
///
/// After any write/fsync failure the writer latches into a failed state
/// (every later Append/Sync reports it): the file's tail is now undefined,
/// and the only safe continuation is recovery — reopen via ReadWal, which
/// treats the un-fsynced tail as torn.
class WalWriter {
 public:
  /// Opens `path` for appending (creating it if absent). The caller must
  /// have repaired any torn tail first (ReadWal + TruncateWal): appending
  /// after garbage would hide valid records behind an unparseable frame.
  static Result<std::unique_ptr<WalWriter>> Open(std::string path);

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;
  ~WalWriter();

  /// Buffers one record. Failpoint "wal/append".
  Status Append(const WalRecord& record) MVP_EXCLUDES(mu_);

  /// Blocks until every appended record with sequence <= `seq` is durable
  /// (group commit). Failpoint "wal/sync" fires on the leader's flush.
  Status Sync(std::uint64_t seq) MVP_EXCLUDES(mu_);

  /// Sync up to the last appended record.
  Status SyncAll() MVP_EXCLUDES(mu_);

  /// Resets the log to empty after a checkpoint folded its records into a
  /// committed generation. Requires every appended record to be synced
  /// (the pending buffer empty) — truncating unsynced records would lose
  /// acknowledged-to-nobody data silently instead of by explicit contract.
  /// Failpoint "wal/truncate", plus "fs/ftruncate" underneath.
  Status TruncateToEmpty() MVP_EXCLUDES(mu_);

  WalWriterStats stats() const MVP_EXCLUDES(mu_);
  const std::string& path() const { return path_; }

 private:
  explicit WalWriter(std::string path, int fd);

  /// Writes `batch` fully and fsyncs. Runs unlocked (group-commit leader).
  Status WriteDurable(const std::vector<std::uint8_t>& batch);

  const std::string path_;
  const int fd_;

  mutable Mutex mu_;
  CondVar cv_;
  std::vector<std::uint8_t> pending_ MVP_GUARDED_BY(mu_);
  std::uint64_t pending_records_ MVP_GUARDED_BY(mu_) = 0;
  std::uint64_t last_appended_seq_ MVP_GUARDED_BY(mu_) = 0;
  std::uint64_t synced_seq_ MVP_GUARDED_BY(mu_) = 0;
  bool sync_in_progress_ MVP_GUARDED_BY(mu_) = false;
  bool failed_ MVP_GUARDED_BY(mu_) = false;
  WalWriterStats stats_ MVP_GUARDED_BY(mu_);
};

}  // namespace mvp::wal

#endif  // MVPTREE_WAL_WAL_H_

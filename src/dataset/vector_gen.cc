#include "dataset/vector_gen.h"

#include "common/rng.h"

namespace mvp::dataset {

std::vector<metric::Vector> UniformVectors(std::size_t count, std::size_t dim,
                                           std::uint64_t seed) {
  Rng rng(seed);
  std::vector<metric::Vector> data(count);
  for (auto& v : data) {
    v.resize(dim);
    for (auto& x : v) x = rng.NextDouble();
  }
  return data;
}

std::vector<metric::Vector> ClusteredVectors(const ClusterParams& params,
                                             std::uint64_t seed) {
  MVP_DCHECK(params.cluster_size > 0);
  Rng rng(seed);
  std::vector<metric::Vector> data;
  data.reserve(params.count);
  while (data.size() < params.count) {
    const std::size_t cluster_begin = data.size();
    const std::size_t this_cluster =
        std::min(params.cluster_size, params.count - data.size());
    // Seed vector: uniform in the unit hypercube.
    metric::Vector seed_vec(params.dim);
    for (auto& x : seed_vec) x = rng.NextDouble();
    data.push_back(std::move(seed_vec));
    // Each subsequent vector perturbs the seed or any previously generated
    // vector of the same cluster; accumulated perturbations make the cluster
    // spread wide (and leave the hypercube), exactly as the paper observes.
    for (std::size_t i = 1; i < this_cluster; ++i) {
      const std::size_t parent =
          cluster_begin + rng.NextIndex(data.size() - cluster_begin);
      metric::Vector v = data[parent];
      for (auto& x : v) x += rng.Uniform(-params.epsilon, params.epsilon);
      data.push_back(std::move(v));
    }
  }
  return data;
}

std::vector<metric::Vector> UniformQueryVectors(std::size_t count,
                                                std::size_t dim,
                                                std::uint64_t seed) {
  // Distinct stream from dataset generation so queries never coincide with
  // data points even under equal seeds.
  return UniformVectors(count, dim, seed ^ 0x9e3779b97f4a7c15ULL);
}

}  // namespace mvp::dataset

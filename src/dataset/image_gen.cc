#include "dataset/image_gen.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace mvp::dataset {

namespace {

/// An axis-aligned ellipse in normalized [-1,1]^2 coordinates.
struct Ellipse {
  double cx = 0, cy = 0, rx = 0.5, ry = 0.5;

  bool Contains(double x, double y) const {
    const double dx = (x - cx) / rx;
    const double dy = (y - cy) / ry;
    return dx * dx + dy * dy <= 1.0;
  }
};

struct Spot {
  double cx = 0, cy = 0, r = 0.05;
  int intensity = 200;
};

/// Full geometric description of one rendered scan.
struct HeadGeometry {
  Ellipse skull;           // bright ring
  Ellipse brain;           // interior tissue
  Ellipse ventricle[2];    // dark cavities
  std::vector<Spot> spots; // bright lesions
  int skull_level = 225;
  int tissue_level = 120;
  int ventricle_level = 35;
  double gradient = 30.0;  // smooth intensity ramp across the brain
  double gradient_dir = 0.0;
};

/// Randomized per-subject anatomy; every subject differs substantially.
HeadGeometry MakeSubject(Rng& rng) {
  HeadGeometry g;
  g.skull.cx = rng.Uniform(-0.08, 0.08);
  g.skull.cy = rng.Uniform(-0.08, 0.08);
  g.skull.rx = rng.Uniform(0.62, 0.82);
  g.skull.ry = rng.Uniform(0.72, 0.92);
  const double thickness = rng.Uniform(0.05, 0.10);
  g.brain = g.skull;
  g.brain.rx -= thickness;
  g.brain.ry -= thickness;
  for (int i = 0; i < 2; ++i) {
    const double side = i == 0 ? -1.0 : 1.0;
    g.ventricle[i].cx = g.brain.cx + side * rng.Uniform(0.08, 0.18);
    g.ventricle[i].cy = g.brain.cy + rng.Uniform(-0.10, 0.10);
    g.ventricle[i].rx = rng.Uniform(0.05, 0.11);
    g.ventricle[i].ry = rng.Uniform(0.12, 0.24);
  }
  const std::size_t num_spots = 2 + rng.NextIndex(4);
  for (std::size_t i = 0; i < num_spots; ++i) {
    Spot s;
    const double angle = rng.Uniform(0, 2 * M_PI);
    const double radial = rng.Uniform(0.15, 0.5);
    s.cx = g.brain.cx + radial * g.brain.rx * std::cos(angle);
    s.cy = g.brain.cy + radial * g.brain.ry * std::sin(angle);
    s.r = rng.Uniform(0.02, 0.06);
    s.intensity = 160 + static_cast<int>(rng.NextIndex(80));
    g.spots.push_back(s);
  }
  g.skull_level = 205 + static_cast<int>(rng.NextIndex(40));
  g.tissue_level = 100 + static_cast<int>(rng.NextIndex(50));
  g.ventricle_level = 25 + static_cast<int>(rng.NextIndex(25));
  g.gradient = rng.Uniform(15.0, 45.0);
  g.gradient_dir = rng.Uniform(0, 2 * M_PI);
  return g;
}

/// Slice-to-slice variation: every geometric parameter jittered by a small
/// relative amount, intensity levels by a few gray values.
HeadGeometry JitterScan(const HeadGeometry& subject, double jitter, Rng& rng) {
  HeadGeometry g = subject;
  auto wobble = [&](double v, double scale) {
    return v + rng.Uniform(-jitter, jitter) * scale;
  };
  auto wobble_ellipse = [&](Ellipse& e) {
    e.cx = wobble(e.cx, 1.0);
    e.cy = wobble(e.cy, 1.0);
    e.rx = std::max(0.01, wobble(e.rx, e.rx * 3.0));
    e.ry = std::max(0.01, wobble(e.ry, e.ry * 3.0));
  };
  wobble_ellipse(g.skull);
  wobble_ellipse(g.brain);
  wobble_ellipse(g.ventricle[0]);
  wobble_ellipse(g.ventricle[1]);
  for (auto& s : g.spots) {
    s.cx = wobble(s.cx, 1.0);
    s.cy = wobble(s.cy, 1.0);
    s.r = std::max(0.005, wobble(s.r, s.r * 3.0));
  }
  g.tissue_level += static_cast<int>(rng.NextIndex(7)) - 3;
  g.skull_level += static_cast<int>(rng.NextIndex(7)) - 3;
  return g;
}

Image Render(const HeadGeometry& g, std::uint16_t width, std::uint16_t height,
             int noise_amplitude, Rng& rng) {
  Image img;
  img.width = width;
  img.height = height;
  img.pixels.resize(static_cast<std::size_t>(width) * height);
  const double gx = std::cos(g.gradient_dir);
  const double gy = std::sin(g.gradient_dir);
  for (std::uint16_t py = 0; py < height; ++py) {
    const double y = 2.0 * (py + 0.5) / height - 1.0;
    for (std::uint16_t px = 0; px < width; ++px) {
      const double x = 2.0 * (px + 0.5) / width - 1.0;
      int level = 5;  // background air
      if (g.skull.Contains(x, y)) {
        level = g.skull_level;
        if (g.brain.Contains(x, y)) {
          level = g.tissue_level +
                  static_cast<int>(g.gradient * (gx * x + gy * y));
          if (g.ventricle[0].Contains(x, y) || g.ventricle[1].Contains(x, y)) {
            level = g.ventricle_level;
          } else {
            for (const auto& s : g.spots) {
              const double dx = x - s.cx;
              const double dy = y - s.cy;
              if (dx * dx + dy * dy <= s.r * s.r) {
                level = s.intensity;
                break;
              }
            }
          }
        }
      }
      if (noise_amplitude > 0) {
        level += static_cast<int>(
                     rng.NextIndex(2 * static_cast<std::size_t>(noise_amplitude) + 1)) -
                 noise_amplitude;
      }
      img.pixels[static_cast<std::size_t>(py) * width + px] =
          static_cast<std::uint8_t>(std::clamp(level, 0, 255));
    }
  }
  return img;
}

std::uint64_t MixSeed(std::uint64_t a, std::uint64_t b) {
  std::uint64_t s = a ^ (b * 0x9e3779b97f4a7c15ULL + 0x7f4a7c15ULL);
  return SplitMix64(s);
}

}  // namespace

std::vector<Image> MriPhantoms(const MriParams& params, std::uint64_t seed) {
  MVP_DCHECK(params.subjects > 0);
  std::vector<Image> scans;
  scans.reserve(params.count);
  for (std::size_t i = 0; i < params.count; ++i) {
    const std::size_t subject = i % params.subjects;
    const std::uint64_t variant = i / params.subjects;
    scans.push_back(MriPhantomScan(params, seed, subject, variant));
  }
  return scans;
}

Image MriPhantomScan(const MriParams& params, std::uint64_t seed,
                     std::size_t subject_index, std::uint64_t variant) {
  Rng subject_rng(MixSeed(seed, subject_index));
  const HeadGeometry subject = MakeSubject(subject_rng);
  Rng scan_rng(MixSeed(MixSeed(seed, subject_index), variant + 1));
  const HeadGeometry scan = JitterScan(subject, params.scan_jitter, scan_rng);
  return Render(scan, params.width, params.height, params.noise_amplitude,
                scan_rng);
}

}  // namespace mvp::dataset

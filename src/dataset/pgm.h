#ifndef MVPTREE_DATASET_PGM_H_
#define MVPTREE_DATASET_PGM_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "dataset/image.h"

/// \file
/// Binary PGM (P5) image I/O. The paper keeps its MRI scans "in binary PGM
/// format using one byte per pixel" (§5.1.B); these helpers let users load
/// a directory of real scans into `Image`s or export the synthetic phantoms
/// for inspection. Only 8-bit (maxval <= 255) P5 files are supported.

namespace mvp::dataset {

/// Encodes `image` as a binary P5 PGM byte stream.
std::vector<std::uint8_t> EncodePgm(const Image& image);

/// Decodes a binary P5 PGM byte stream. Handles comments and arbitrary
/// whitespace in the header; rejects P2 (ASCII), 16-bit, truncated, and
/// malformed input with a Corruption/NotSupported status.
Result<Image> DecodePgm(const std::vector<std::uint8_t>& bytes);

/// Writes `image` to `path` as binary PGM.
Status WritePgm(const std::string& path, const Image& image);

/// Reads a binary PGM file into an Image.
Result<Image> ReadPgm(const std::string& path);

}  // namespace mvp::dataset

#endif  // MVPTREE_DATASET_PGM_H_

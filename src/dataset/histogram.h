#ifndef MVPTREE_DATASET_HISTOGRAM_H_
#define MVPTREE_DATASET_HISTOGRAM_H_

#include <cstdint>
#include <ostream>
#include <vector>

#include "common/macros.h"
#include "common/rng.h"
#include "metric/metric.h"

/// \file
/// Pairwise distance-distribution histograms — Figures 4-7 of the paper.
/// "The distance distribution of data points plays an important role in the
/// efficiency of the index structures" (§1); the paper characterizes every
/// dataset by this histogram before measuring search performance.

namespace mvp::dataset {

/// A bucketed distribution of pairwise distances. Bucket i covers
/// [i*bucket_width, (i+1)*bucket_width).
struct DistanceHistogram {
  double bucket_width = 0.01;
  std::vector<std::uint64_t> counts;
  std::uint64_t total_pairs = 0;   ///< pairs actually accumulated
  double scale = 1.0;              ///< multiply counts by this to estimate
                                   ///< the full all-pairs histogram
  double min_distance = 0.0;
  double max_distance = 0.0;

  /// Mean of the sampled distances.
  double Mean() const;
  /// Distance below which `quantile` (in [0,1]) of sampled pairs fall
  /// (bucket-resolution approximation).
  double Quantile(double quantile) const;
  /// Index of the fullest bucket (the distribution's mode).
  std::size_t PeakBucket() const;
};

namespace internal {
inline void Accumulate(DistanceHistogram& h, double distance) {
  const auto bucket =
      static_cast<std::size_t>(distance / h.bucket_width);
  if (h.counts.size() <= bucket) h.counts.resize(bucket + 1, 0);
  ++h.counts[bucket];
  if (h.total_pairs == 0 || distance < h.min_distance) {
    h.min_distance = distance;
  }
  if (h.total_pairs == 0 || distance > h.max_distance) {
    h.max_distance = distance;
  }
  ++h.total_pairs;
}
}  // namespace internal

/// Exact all-pairs histogram: n*(n-1)/2 distance computations (used for the
/// 1151-image Figures 6-7, where the paper also computes all 658795 pairs).
template <typename Object, metric::MetricFor<Object> Metric>
DistanceHistogram AllPairsHistogram(const std::vector<Object>& objects,
                                    const Metric& metric,
                                    double bucket_width) {
  MVP_DCHECK(bucket_width > 0);
  DistanceHistogram h;
  h.bucket_width = bucket_width;
  for (std::size_t i = 0; i < objects.size(); ++i) {
    for (std::size_t j = i + 1; j < objects.size(); ++j) {
      internal::Accumulate(h, metric(objects[i], objects[j]));
    }
  }
  return h;
}

/// Monte-Carlo histogram over `samples` uniformly random distinct pairs;
/// `scale` is set so counts*scale estimates the all-pairs histogram (used
/// for the 50000-vector Figures 4-5, whose 1.25e9 exact pairs are
/// unnecessary for the shape). Falls back to the exact computation when the
/// dataset has no more than `samples` pairs.
template <typename Object, metric::MetricFor<Object> Metric>
DistanceHistogram SampledPairsHistogram(const std::vector<Object>& objects,
                                        const Metric& metric,
                                        double bucket_width,
                                        std::uint64_t samples,
                                        std::uint64_t seed) {
  MVP_DCHECK(bucket_width > 0);
  const std::uint64_t n = objects.size();
  const std::uint64_t all_pairs = n < 2 ? 0 : n * (n - 1) / 2;
  if (all_pairs <= samples) {
    return AllPairsHistogram(objects, metric, bucket_width);
  }
  DistanceHistogram h;
  h.bucket_width = bucket_width;
  Rng rng(seed);
  for (std::uint64_t s = 0; s < samples; ++s) {
    const std::size_t i = rng.NextIndex(objects.size());
    std::size_t j = rng.NextIndex(objects.size() - 1);
    if (j >= i) ++j;  // uniform over j != i
    internal::Accumulate(h, metric(objects[i], objects[j]));
  }
  h.scale = static_cast<double>(all_pairs) / static_cast<double>(samples);
  return h;
}

/// Options for PrintHistogram.
struct HistogramPrintOptions {
  std::size_t max_rows = 60;   ///< coarsen buckets to fit in this many rows
  std::size_t bar_width = 50;  ///< width of the ASCII bar column
  bool show_scaled = true;     ///< print counts multiplied by `scale`
};

/// Renders the histogram as an aligned text table with ASCII bars (the
/// reproduction's stand-in for the paper's bar charts).
void PrintHistogram(std::ostream& os, const DistanceHistogram& histogram,
                    const HistogramPrintOptions& options = {});

}  // namespace mvp::dataset

#endif  // MVPTREE_DATASET_HISTOGRAM_H_

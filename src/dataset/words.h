#ifndef MVPTREE_DATASET_WORDS_H_
#define MVPTREE_DATASET_WORDS_H_

#include <cstdint>
#include <string>
#include <vector>

/// \file
/// Synthetic word collections for the non-spatial (edit-distance) domain the
/// paper motivates in §3.1 ("text databases which generally use the edit
/// distance") and that [BK73] — the earliest related structure — was built
/// for ("best matching key words in a file").

namespace mvp::dataset {

/// Generates `count` distinct pronounceable words (alternating
/// consonant/vowel syllables, lengths ~3-12), deterministically from `seed`.
std::vector<std::string> SyntheticWords(std::size_t count, std::uint64_t seed);

/// Applies `edits` random single-character edits (insert/delete/substitute)
/// to `word` — handy for building near-match queries with a known answer.
std::string MutateWord(const std::string& word, unsigned edits,
                       std::uint64_t seed);

}  // namespace mvp::dataset

#endif  // MVPTREE_DATASET_WORDS_H_

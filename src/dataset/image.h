#ifndef MVPTREE_DATASET_IMAGE_H_
#define MVPTREE_DATASET_IMAGE_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/macros.h"
#include "common/serialize.h"

/// \file
/// Gray-level image type and the pixel-wise image metrics of §5.1.B.
///
/// "When calculating distances, we simply treat these images as
/// 256*256=65536-dimensional Euclidean vectors, and accumulate the pixel by
/// pixel intensity differences using L1 or L2 metrics. ... The L1 distance
/// values are normalized by 10000 ... The L2 distance values are normalized
/// by 100." The normalizers below generalize those two constants to any
/// resolution so that tolerance factors stay in the paper's units: L1 grows
/// linearly in pixel count, L2 with its square root.

namespace mvp::dataset {

/// A gray-level image: row-major uint8 pixels (256 intensity levels).
struct Image {
  std::uint16_t width = 0;
  std::uint16_t height = 0;
  std::vector<std::uint8_t> pixels;

  std::size_t size() const { return pixels.size(); }
  std::uint8_t at(std::size_t x, std::size_t y) const {
    MVP_DCHECK(x < width && y < height);
    return pixels[y * width + x];
  }
  bool operator==(const Image& other) const = default;
};

/// Paper's pixel count: 256*256 MRI scans.
inline constexpr double kPaperImagePixels = 65536.0;

/// L1 normalizer: 10000 at 256x256, scaled linearly with pixel count.
inline double ImageL1Normalizer(std::size_t pixels) {
  return 10000.0 * static_cast<double>(pixels) / kPaperImagePixels;
}

/// L2 normalizer: 100 at 256x256, scaled with sqrt(pixel count).
inline double ImageL2Normalizer(std::size_t pixels) {
  return 100.0 * std::sqrt(static_cast<double>(pixels) / kPaperImagePixels);
}

/// Pixel-wise L1 distance, normalized per the paper (§5.1.B).
struct ImageL1 {
  double operator()(const Image& a, const Image& b) const {
    MVP_DCHECK(a.width == b.width && a.height == b.height);
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < a.pixels.size(); ++i) {
      const int diff = static_cast<int>(a.pixels[i]) - b.pixels[i];
      sum += static_cast<std::uint64_t>(diff < 0 ? -diff : diff);
    }
    return static_cast<double>(sum) / ImageL1Normalizer(a.pixels.size());
  }
};

/// Pixel-wise L2 (Euclidean) distance, normalized per the paper (§5.1.B).
struct ImageL2 {
  double operator()(const Image& a, const Image& b) const {
    MVP_DCHECK(a.width == b.width && a.height == b.height);
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < a.pixels.size(); ++i) {
      const int diff = static_cast<int>(a.pixels[i]) - b.pixels[i];
      sum += static_cast<std::uint64_t>(diff * diff);
    }
    return std::sqrt(static_cast<double>(sum)) /
           ImageL2Normalizer(a.pixels.size());
  }
};

/// Codec for Image (see common/codec.h for the codec contract).
struct ImageCodec {
  void Write(BinaryWriter& w, const Image& img) const {
    w.Write<std::uint16_t>(img.width);
    w.Write<std::uint16_t>(img.height);
    w.WriteVector(img.pixels);
  }
  Status Read(BinaryReader& r, Image* out) const {
    MVP_RETURN_NOT_OK(r.Read<std::uint16_t>(&out->width));
    MVP_RETURN_NOT_OK(r.Read<std::uint16_t>(&out->height));
    MVP_RETURN_NOT_OK(r.ReadVector(&out->pixels));
    if (out->pixels.size() !=
        static_cast<std::size_t>(out->width) * out->height) {
      return Status::Corruption("image pixel count mismatches dimensions");
    }
    return Status::OK();
  }
};

}  // namespace mvp::dataset

#endif  // MVPTREE_DATASET_IMAGE_H_

#include "dataset/words.h"

#include <unordered_set>

#include "common/rng.h"

namespace mvp::dataset {

namespace {

constexpr const char* kConsonants[] = {
    "b", "c", "d", "f", "g", "h", "j", "k", "l", "m",  "n",  "p",
    "r", "s", "t", "v", "w", "z", "ch", "sh", "th", "st", "tr", "pl"};
constexpr const char* kVowels[] = {"a", "e", "i", "o", "u", "ai", "ea", "ou"};

std::string MakeWord(mvp::Rng& rng) {
  const std::size_t syllables = 1 + rng.NextIndex(4);
  std::string word;
  for (std::size_t s = 0; s < syllables; ++s) {
    word += kConsonants[rng.NextIndex(std::size(kConsonants))];
    word += kVowels[rng.NextIndex(std::size(kVowels))];
  }
  if (rng.NextIndex(3) == 0) {
    word += kConsonants[rng.NextIndex(18)];  // single-letter coda only
  }
  return word;
}

}  // namespace

std::vector<std::string> SyntheticWords(std::size_t count,
                                        std::uint64_t seed) {
  Rng rng(seed);
  std::unordered_set<std::string> seen;
  std::vector<std::string> words;
  words.reserve(count);
  while (words.size() < count) {
    std::string w = MakeWord(rng);
    if (seen.insert(w).second) words.push_back(std::move(w));
  }
  return words;
}

std::string MutateWord(const std::string& word, unsigned edits,
                       std::uint64_t seed) {
  Rng rng(seed);
  std::string w = word;
  constexpr char kAlphabet[] = "abcdefghijklmnopqrstuvwxyz";
  for (unsigned e = 0; e < edits; ++e) {
    const std::size_t op = w.empty() ? 0 : rng.NextIndex(3);
    switch (op) {
      case 0: {  // insert
        const std::size_t pos = rng.NextIndex(w.size() + 1);
        w.insert(w.begin() + static_cast<std::ptrdiff_t>(pos),
                 kAlphabet[rng.NextIndex(26)]);
        break;
      }
      case 1: {  // delete
        w.erase(w.begin() + static_cast<std::ptrdiff_t>(rng.NextIndex(w.size())));
        break;
      }
      default: {  // substitute (with a letter different from the current one)
        const std::size_t pos = rng.NextIndex(w.size());
        char c = kAlphabet[rng.NextIndex(26)];
        while (c == w[pos]) c = kAlphabet[rng.NextIndex(26)];
        w[pos] = c;
        break;
      }
    }
  }
  return w;
}

}  // namespace mvp::dataset

#ifndef MVPTREE_DATASET_IMAGE_GEN_H_
#define MVPTREE_DATASET_IMAGE_GEN_H_

#include <cstdint>
#include <vector>

#include "dataset/image.h"

/// \file
/// Synthetic gray-level "MRI head scan" generator.
///
/// Substitution note (see DESIGN.md §3): the paper evaluates on 1151 real
/// MRI head scans of several people, used purely through pixel-wise L1/L2
/// distances. Those scans are not available, so this generator produces head
/// *phantoms* — the standard stand-in in medical-imaging research — with the
/// property that matters to the index structures: the distance distribution.
/// Scans of the same subject are near-identical (small deformation + noise),
/// scans of different subjects are far apart, reproducing the paper's
/// bimodal Figures 6-7 ("while most of the images are distant from each
/// other, some of them are quite similar, probably forming several
/// clusters").
///
/// Each subject gets randomized head geometry: an elliptical skull ring, a
/// brain interior with a smooth intensity gradient, two dark ventricle blobs
/// and a handful of bright lesion spots. Each scan of a subject jitters that
/// geometry slightly (slice-to-slice variation) and adds per-pixel noise.

namespace mvp::dataset {

/// Parameters of the phantom collection.
struct MriParams {
  std::size_t count = 1151;    ///< total scans (paper: 1151)
  std::size_t subjects = 40;   ///< distinct "people" (paper: "several people")
  std::uint16_t width = 64;    ///< default 64x64; set 256 for paper scale
  std::uint16_t height = 64;
  /// Relative geometry jitter between scans of one subject. The default
  /// puts same-subject L1 distances (mean ~58 normalized at 64x64) well
  /// below the inter-subject bulk (~230), reproducing the paper's bimodal
  /// Figures 6-7 and its "meaningful tolerance ~50" observation.
  double scan_jitter = 0.008;
  int noise_amplitude = 6;     ///< per-pixel uniform noise, +-amplitude
};

/// Generates `params.count` scans, round-robin across subjects, so every
/// subject has floor/ceil(count/subjects) scans. Deterministic in `seed`.
std::vector<Image> MriPhantoms(const MriParams& params, std::uint64_t seed);

/// Generates one extra scan of subject `subject_index` (useful as a query
/// with a known near cluster). Deterministic in (params, seed,
/// subject_index, variant).
Image MriPhantomScan(const MriParams& params, std::uint64_t seed,
                     std::size_t subject_index, std::uint64_t variant);

}  // namespace mvp::dataset

#endif  // MVPTREE_DATASET_IMAGE_GEN_H_

#include "dataset/pgm.h"

#include <cctype>
#include <cstdio>

#include "common/serialize.h"

namespace mvp::dataset {

namespace {

/// Reads the next header token (skipping whitespace and '#' comments).
/// Returns false when the buffer ends before a token completes.
bool NextToken(const std::vector<std::uint8_t>& bytes, std::size_t& pos,
               std::string* token) {
  token->clear();
  while (pos < bytes.size()) {
    const char c = static_cast<char>(bytes[pos]);
    if (c == '#') {  // comment to end of line
      while (pos < bytes.size() && bytes[pos] != '\n') ++pos;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (!token->empty()) return true;
      ++pos;
      continue;
    }
    token->push_back(c);
    ++pos;
  }
  return !token->empty();
}

bool ParseUnsigned(const std::string& token, unsigned long* out) {
  if (token.empty()) return false;
  unsigned long value = 0;
  for (const char c : token) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<unsigned long>(c - '0');
    if (value > 1000000) return false;  // guards width*height overflow too
  }
  *out = value;
  return true;
}

}  // namespace

std::vector<std::uint8_t> EncodePgm(const Image& image) {
  char header[64];
  const int header_len =
      std::snprintf(header, sizeof(header), "P5\n%u %u\n255\n", image.width,
                    image.height);
  std::vector<std::uint8_t> bytes(header, header + header_len);
  bytes.insert(bytes.end(), image.pixels.begin(), image.pixels.end());
  return bytes;
}

Result<Image> DecodePgm(const std::vector<std::uint8_t>& bytes) {
  std::size_t pos = 0;
  std::string token;
  if (!NextToken(bytes, pos, &token)) {
    return Status::Corruption("empty PGM buffer");
  }
  if (token == "P2") {
    return Status::NotSupported("ASCII (P2) PGM is not supported");
  }
  if (token != "P5") return Status::Corruption("not a P5 PGM file");

  unsigned long width = 0, height = 0, maxval = 0;
  if (!NextToken(bytes, pos, &token) || !ParseUnsigned(token, &width) ||
      !NextToken(bytes, pos, &token) || !ParseUnsigned(token, &height) ||
      !NextToken(bytes, pos, &token) || !ParseUnsigned(token, &maxval)) {
    return Status::Corruption("malformed PGM header");
  }
  if (width == 0 || height == 0 || width > 65535 || height > 65535) {
    return Status::Corruption("PGM dimensions out of range");
  }
  if (maxval == 0 || maxval > 255) {
    return Status::NotSupported("only 8-bit PGM (maxval <= 255) supported");
  }
  // Exactly one whitespace byte separates the header from pixel data. The
  // tokenizer stops AT that separator (it returns without consuming the
  // delimiter), so skip it here.
  if (pos >= bytes.size() ||
      !std::isspace(static_cast<unsigned char>(bytes[pos]))) {
    return Status::Corruption("missing separator after PGM header");
  }
  ++pos;
  const std::size_t expected = static_cast<std::size_t>(width) * height;
  if (bytes.size() - pos < expected) {
    return Status::Corruption("PGM pixel data truncated");
  }
  Image image;
  image.width = static_cast<std::uint16_t>(width);
  image.height = static_cast<std::uint16_t>(height);
  image.pixels.assign(bytes.begin() + static_cast<std::ptrdiff_t>(pos),
                      bytes.begin() + static_cast<std::ptrdiff_t>(pos) +
                          static_cast<std::ptrdiff_t>(expected));
  return image;
}

Status WritePgm(const std::string& path, const Image& image) {
  return WriteFile(path, EncodePgm(image));
}

Result<Image> ReadPgm(const std::string& path) {
  auto bytes = ReadFile(path);
  if (!bytes.ok()) return bytes.status();
  return DecodePgm(bytes.value());
}

}  // namespace mvp::dataset

#include "dataset/histogram.h"

#include <algorithm>
#include <cstdio>
#include <string>

namespace mvp::dataset {

double DistanceHistogram::Mean() const {
  if (total_pairs == 0) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    sum += static_cast<double>(counts[i]) * (static_cast<double>(i) + 0.5) *
           bucket_width;
  }
  return sum / static_cast<double>(total_pairs);
}

double DistanceHistogram::Quantile(double quantile) const {
  MVP_DCHECK(quantile >= 0.0 && quantile <= 1.0);
  if (total_pairs == 0) return 0.0;
  const double target = quantile * static_cast<double>(total_pairs);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    cumulative += static_cast<double>(counts[i]);
    if (cumulative >= target) {
      return (static_cast<double>(i) + 1.0) * bucket_width;
    }
  }
  return static_cast<double>(counts.size()) * bucket_width;
}

std::size_t DistanceHistogram::PeakBucket() const {
  if (counts.empty()) return 0;
  return static_cast<std::size_t>(
      std::max_element(counts.begin(), counts.end()) - counts.begin());
}

void PrintHistogram(std::ostream& os, const DistanceHistogram& histogram,
                    const HistogramPrintOptions& options) {
  if (histogram.counts.empty()) {
    os << "(empty histogram)\n";
    return;
  }
  // Coarsen: merge adjacent buckets until the row count fits.
  std::size_t merge = 1;
  while ((histogram.counts.size() + merge - 1) / merge > options.max_rows) {
    ++merge;
  }
  std::vector<std::uint64_t> rows((histogram.counts.size() + merge - 1) / merge,
                                  0);
  for (std::size_t i = 0; i < histogram.counts.size(); ++i) {
    rows[i / merge] += histogram.counts[i];
  }
  const std::uint64_t peak = *std::max_element(rows.begin(), rows.end());

  char line[160];
  std::snprintf(line, sizeof(line),
                "  pairs=%llu  scale=%.2f  min=%.4f  max=%.4f  mean=%.4f\n",
                static_cast<unsigned long long>(histogram.total_pairs),
                histogram.scale, histogram.min_distance,
                histogram.max_distance, histogram.Mean());
  os << line;
  for (std::size_t r = 0; r < rows.size(); ++r) {
    const double lo = static_cast<double>(r * merge) * histogram.bucket_width;
    const double hi =
        static_cast<double>((r + 1) * merge) * histogram.bucket_width;
    const double display =
        options.show_scaled
            ? static_cast<double>(rows[r]) * histogram.scale
            : static_cast<double>(rows[r]);
    const std::size_t bar =
        peak == 0 ? 0
                  : static_cast<std::size_t>(
                        static_cast<double>(rows[r]) / static_cast<double>(peak) *
                        static_cast<double>(options.bar_width));
    std::snprintf(line, sizeof(line), "  [%8.3f, %8.3f)  %14.0f  ", lo, hi,
                  display);
    os << line << std::string(bar, '#') << "\n";
  }
}

}  // namespace mvp::dataset

#ifndef MVPTREE_FAULT_FAULT_FS_H_
#define MVPTREE_FAULT_FAULT_FS_H_

#include <exception>

/// \file
/// Injectable filesystem seam. The durable-write path (WriteFileAtomic in
/// common/serialize.cc) and the mmap read path (snapshot/mmap_file.h) route
/// their syscalls through the thin wrappers in `fault::fs` instead of calling
/// ::open / ::write / ::fsync / ::rename / ::mmap directly. Each wrapper
/// evaluates a failpoint named after the operation — "fs/open", "fs/write",
/// "fs/fsync", "fs/close", "fs/rename", "fs/remove", "fs/fstat",
/// "fs/ftruncate", "fs/mmap" —
/// with the file path as the match detail, so a test can make *the fsync of
/// the MANIFEST specifically* fail with ENOSPC, or the rename of CURRENT
/// throw CrashError, without touching a real full disk.
///
/// When a fired config has `crash = true` the wrapper throws CrashError
/// *instead of performing the operation*, simulating the process dying at
/// that exact syscall: everything before the call hit the disk, nothing
/// after it ran (no cleanup, no temp-file removal). Tests catch CrashError
/// at the top of the commit they are interrupting and then verify the store
/// still loads.
///
/// Write sites honour `short_write`: the wrapper really writes that many
/// bytes first (partial progress reached the disk) and then fails or
/// crashes, which is how "power loss mid-write leaves a truncated temp
/// file" is reproduced deterministically.
///
/// With no failpoint armed every wrapper is the raw syscall plus one relaxed
/// atomic load.

namespace mvp::fault {

/// Simulated process death at a syscall. Thrown only by the fault::fs seam
/// (and only when a test armed a crash failpoint); never escapes tests.
class CrashError : public std::exception {
 public:
  ~CrashError() override;
  const char* what() const noexcept override {
    return "injected crash at syscall";
  }
};

}  // namespace mvp::fault

#if defined(__unix__) || defined(__APPLE__)
#define MVPTREE_FAULT_FS_POSIX 1

#include <sys/stat.h>
#include <sys/types.h>

#include <cstddef>

namespace mvp::fault::fs {

/// ::open. Failpoint "fs/open" (detail: path) → returns -1 / crashes.
int Open(const char* path, int flags, unsigned mode);

/// ::write. Failpoint "fs/write" (detail: `path`, the file being written,
/// passed by the caller since the kernel API is fd-based). A fire with
/// `short_write >= 0` really writes min(short_write, count) bytes before
/// failing or crashing.
long Write(int fd, const void* buf, std::size_t count, const char* path);

/// ::fsync. Failpoint "fs/fsync" (detail: path).
int Fsync(int fd, const char* path);

/// ::close. Failpoint "fs/close" (detail: path).
int Close(int fd, const char* path);

/// ::rename. Failpoint "fs/rename" (detail: the destination path — the name
/// that commits).
int Rename(const char* from, const char* to);

/// ::unlink via std::remove. Failpoint "fs/remove" (detail: path).
int Remove(const char* path);

/// ::fstat. Failpoint "fs/fstat" (detail: path).
int Fstat(int fd, struct ::stat* st, const char* path);

/// ::ftruncate. Failpoint "fs/ftruncate" (detail: path). Used by the WAL to
/// discard a torn tail on recovery and to reset the log after a checkpoint
/// folded its records into a committed generation.
int Ftruncate(int fd, long long length, const char* path);

/// ::mmap (read-only mappings; offset 0). Failpoint "fs/mmap" (detail:
/// path) → returns MAP_FAILED / crashes.
void* Mmap(std::size_t length, int prot, int flags, int fd, const char* path);

}  // namespace mvp::fault::fs

#endif  // POSIX

#endif  // MVPTREE_FAULT_FAULT_FS_H_

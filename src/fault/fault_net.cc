#include "fault/fault_net.h"

#if defined(MVPTREE_FAULT_FS_POSIX)

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>

#include "fault/failpoint.h"

namespace mvp::fault::net {
namespace {

struct Injection {
  FailpointConfig config;
  std::uint64_t ordinal = 0;  // 1-based fire count
};

/// Evaluates failpoint `name` for `detail`; fills `*injection` and returns
/// true when the site should misbehave. Mirrors the fault::fs helper.
bool ShouldFail(const char* name, const char* detail, Injection* injection) {
  if (!Failpoints::AnyArmed()) return false;
  return Failpoints::Instance().Fire(name, detail == nullptr ? "" : detail,
                                     &injection->config,
                                     &injection->ordinal);
}

/// The common "fail this syscall" tail: throw on crash configs, otherwise
/// plant the injected errno and report failure through `fail_value`. The
/// default errno is ECONNRESET — the characteristic failure of a peer
/// vanishing mid-conversation — rather than fs's EIO.
template <typename T>
T Fail(const Injection& injection, T fail_value) {
  if (injection.config.crash) throw CrashError();
  errno = injection.config.error_code != 0 ? injection.config.error_code
                                           : ECONNRESET;
  return fail_value;
}

#if defined(MSG_NOSIGNAL)
constexpr int kSendFlags = MSG_NOSIGNAL;
#else
constexpr int kSendFlags = 0;
#endif

}  // namespace

int Socket(int domain, int type, int protocol, const char* detail) {
  Injection injection;
  if (ShouldFail("net/socket", detail, &injection)) return Fail(injection, -1);
  return ::socket(domain, type, protocol);
}

int Bind(int fd, const struct ::sockaddr* addr, socklen_t len,
         const char* detail) {
  Injection injection;
  if (ShouldFail("net/bind", detail, &injection)) return Fail(injection, -1);
  return ::bind(fd, addr, len);
}

int Listen(int fd, int backlog, const char* detail) {
  Injection injection;
  if (ShouldFail("net/listen", detail, &injection)) return Fail(injection, -1);
  return ::listen(fd, backlog);
}

int Accept(int fd, const char* detail) {
  Injection injection;
  if (ShouldFail("net/accept", detail, &injection)) return Fail(injection, -1);
  return ::accept(fd, nullptr, nullptr);
}

int Connect(int fd, const struct ::sockaddr* addr, socklen_t len,
            const char* detail) {
  Injection injection;
  if (ShouldFail("net/connect", detail, &injection)) {
    return Fail(injection, -1);
  }
  return ::connect(fd, addr, len);
}

long Send(int fd, const void* buf, std::size_t count, const char* detail) {
  Injection injection;
  if (ShouldFail("net/send", detail, &injection)) {
    // A configured short write transmits real partial progress on the FIRST
    // fire — those bytes genuinely reach the peer, like a connection torn
    // down mid-frame — and fails hard (error or crash) from the second fire
    // on, so the caller's send loop cannot quietly complete the frame.
    if (injection.config.short_write >= 0 && injection.ordinal == 1) {
      const std::size_t n = std::min(
          count, static_cast<std::size_t>(injection.config.short_write));
      const long sent = ::send(fd, buf, n, kSendFlags);
      if (injection.config.crash) throw CrashError();
      return sent;
    }
    return Fail(injection, static_cast<long>(-1));
  }
  return ::send(fd, buf, count, kSendFlags);
}

long Recv(int fd, void* buf, std::size_t count, const char* detail) {
  Injection injection;
  if (ShouldFail("net/recv", detail, &injection)) {
    return Fail(injection, static_cast<long>(-1));
  }
  return ::recv(fd, buf, count, 0);
}

int CloseSocket(int fd, const char* detail) {
  Injection injection;
  if (ShouldFail("net/close", detail, &injection)) {
    // Really close unless simulating a crash, so tests do not leak fds —
    // same reasoning as fs::Close.
    if (!injection.config.crash) ::close(fd);
    return Fail(injection, -1);
  }
  return ::close(fd);
}

int ShutdownSocket(int fd, int how, const char* detail) {
  Injection injection;
  if (ShouldFail("net/shutdown", detail, &injection)) {
    return Fail(injection, -1);
  }
  return ::shutdown(fd, how);
}

int GetSockName(int fd, struct ::sockaddr* addr, socklen_t* len) {
  return ::getsockname(fd, addr, len);
}

int SetSockOpt(int fd, int level, int optname, const void* optval,
               socklen_t optlen) {
  return ::setsockopt(fd, level, optname, optval, optlen);
}

}  // namespace mvp::fault::net

#endif  // MVPTREE_FAULT_FS_POSIX

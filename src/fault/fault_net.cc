#include "fault/fault_net.h"

#if defined(MVPTREE_FAULT_FS_POSIX)

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>

#include "fault/failpoint.h"

namespace mvp::fault::net {
namespace {

struct Injection {
  FailpointConfig config;
  std::uint64_t ordinal = 0;  // 1-based fire count
};

/// Evaluates failpoint `name` for `detail`; fills `*injection` and returns
/// true when the site should misbehave. Mirrors the fault::fs helper.
bool ShouldFail(const char* name, const char* detail, Injection* injection) {
  if (!Failpoints::AnyArmed()) return false;
  return Failpoints::Instance().Fire(name, detail == nullptr ? "" : detail,
                                     &injection->config,
                                     &injection->ordinal);
}

/// The common "fail this syscall" tail: throw on crash configs, otherwise
/// plant the injected errno and report failure through `fail_value`. The
/// default errno is ECONNRESET — the characteristic failure of a peer
/// vanishing mid-conversation — rather than fs's EIO.
template <typename T>
T Fail(const Injection& injection, T fail_value) {
  if (injection.config.crash) throw CrashError();
  errno = injection.config.error_code != 0 ? injection.config.error_code
                                           : ECONNRESET;
  return fail_value;
}

#if defined(MSG_NOSIGNAL)
constexpr int kSendFlags = MSG_NOSIGNAL;
#else
constexpr int kSendFlags = 0;
#endif

}  // namespace

int Socket(int domain, int type, int protocol, const char* detail) {
  Injection injection;
  if (ShouldFail("net/socket", detail, &injection)) return Fail(injection, -1);
  return ::socket(domain, type, protocol);
}

int Bind(int fd, const struct ::sockaddr* addr, socklen_t len,
         const char* detail) {
  Injection injection;
  if (ShouldFail("net/bind", detail, &injection)) return Fail(injection, -1);
  return ::bind(fd, addr, len);
}

int Listen(int fd, int backlog, const char* detail) {
  Injection injection;
  if (ShouldFail("net/listen", detail, &injection)) return Fail(injection, -1);
  return ::listen(fd, backlog);
}

int Accept(int fd, const char* detail) {
  // EINTR is retried here, inside the seam, so every accept loop in the
  // codebase inherits the retry. The loop spans the injection evaluation
  // too: an armed EINTR failpoint (count=1) is itself retried — that is
  // the regression test's probe that the retry really lives in the seam.
  while (true) {
    Injection injection;
    if (ShouldFail("net/accept", detail, &injection)) {
      if (Fail(injection, -1) < 0 && errno == EINTR) continue;
      return -1;
    }
    const int conn = ::accept(fd, nullptr, nullptr);
    if (conn < 0 && errno == EINTR) continue;
    return conn;
  }
}

int Connect(int fd, const struct ::sockaddr* addr, socklen_t len,
            const char* detail) {
  Injection injection;
  if (ShouldFail("net/connect", detail, &injection)) {
    if (Fail(injection, -1) < 0 && errno != EINTR) return -1;
    // Injected EINTR: the simulated signal interrupted nothing — the
    // connection was never initiated, so plainly retrying is correct.
    return ::connect(fd, addr, len);
  }
  if (::connect(fd, addr, len) == 0) return 0;
  if (errno != EINTR) return -1;
  // A real EINTR from connect(2) does NOT abort the attempt: the handshake
  // continues asynchronously, and calling connect again would fail with
  // EALREADY/EISCONN. The POSIX-portable completion is to wait for
  // writability, then read the final disposition from SO_ERROR.
  while (true) {
    struct ::pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLOUT;
    const int ready = ::poll(&pfd, 1, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    int error = 0;
    socklen_t error_len = sizeof(error);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &error, &error_len) != 0) {
      return -1;
    }
    if (error != 0) {
      errno = error;
      return -1;
    }
    return 0;
  }
}

long Send(int fd, const void* buf, std::size_t count, const char* detail) {
  while (true) {
    Injection injection;
    if (ShouldFail("net/send", detail, &injection)) {
      // A configured short write transmits real partial progress on the
      // FIRST fire — those bytes genuinely reach the peer, like a
      // connection torn down mid-frame — and fails hard (error or crash)
      // from the second fire on, so the caller's send loop cannot quietly
      // complete the frame.
      if (injection.config.short_write >= 0 && injection.ordinal == 1) {
        const std::size_t n = std::min(
            count, static_cast<std::size_t>(injection.config.short_write));
        const long sent = ::send(fd, buf, n, kSendFlags);
        if (injection.config.crash) throw CrashError();
        return sent;
      }
      if (Fail(injection, static_cast<long>(-1)) < 0 && errno == EINTR) {
        continue;
      }
      return -1;
    }
    const long sent = ::send(fd, buf, count, kSendFlags);
    if (sent < 0 && errno == EINTR) continue;
    return sent;
  }
}

long Recv(int fd, void* buf, std::size_t count, const char* detail) {
  while (true) {
    Injection injection;
    if (ShouldFail("net/recv", detail, &injection)) {
      if (Fail(injection, static_cast<long>(-1)) < 0 && errno == EINTR) {
        continue;
      }
      return -1;
    }
    const long got = ::recv(fd, buf, count, 0);
    if (got < 0 && errno == EINTR) continue;
    return got;
  }
}

int CloseSocket(int fd, const char* detail) {
  Injection injection;
  if (ShouldFail("net/close", detail, &injection)) {
    // Really close unless simulating a crash, so tests do not leak fds —
    // same reasoning as fs::Close.
    if (!injection.config.crash) ::close(fd);
    return Fail(injection, -1);
  }
  return ::close(fd);
}

int ShutdownSocket(int fd, int how, const char* detail) {
  Injection injection;
  if (ShouldFail("net/shutdown", detail, &injection)) {
    return Fail(injection, -1);
  }
  return ::shutdown(fd, how);
}

int GetSockName(int fd, struct ::sockaddr* addr, socklen_t* len) {
  return ::getsockname(fd, addr, len);
}

int SetSockOpt(int fd, int level, int optname, const void* optval,
               socklen_t optlen) {
  return ::setsockopt(fd, level, optname, optval, optlen);
}

}  // namespace mvp::fault::net

#endif  // MVPTREE_FAULT_FS_POSIX

#include "fault/fault_fs.h"

#include "fault/failpoint.h"

namespace mvp::fault {

CrashError::~CrashError() = default;

}  // namespace mvp::fault

#if defined(MVPTREE_FAULT_FS_POSIX)

#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>

namespace mvp::fault::fs {
namespace {

struct Injection {
  FailpointConfig config;
  std::uint64_t ordinal = 0;  // 1-based fire count
};

/// Evaluates failpoint `name` for `path`; fills `*injection` and returns
/// true when the site should misbehave. Never throws — crash handling is
/// per wrapper, since write sites may owe partial progress first.
bool ShouldFail(const char* name, const char* path, Injection* injection) {
  if (!Failpoints::AnyArmed()) return false;
  return Failpoints::Instance().Fire(name, path == nullptr ? "" : path,
                                     &injection->config,
                                     &injection->ordinal);
}

/// The common "fail this syscall" tail: throw on crash configs, otherwise
/// plant the injected errno and report failure through `fail_value`.
template <typename T>
T Fail(const Injection& injection, T fail_value) {
  if (injection.config.crash) throw CrashError();
  errno = injection.config.error_code != 0 ? injection.config.error_code
                                           : EIO;
  return fail_value;
}

}  // namespace

int Open(const char* path, int flags, unsigned mode) {
  // EINTR is retried here, inside the seam — including an injected EINTR
  // (count=1), which fires once, gets retried, and succeeds for real.
  while (true) {
    Injection injection;
    if (ShouldFail("fs/open", path, &injection)) {
      if (Fail(injection, -1) < 0 && errno == EINTR) continue;
      return -1;
    }
    const int fd = ::open(path, flags, static_cast<mode_t>(mode));
    if (fd < 0 && errno == EINTR) continue;
    return fd;
  }
}

long Write(int fd, const void* buf, std::size_t count, const char* path) {
  while (true) {
    Injection injection;
    if (ShouldFail("fs/write", path, &injection)) {
      // A configured short write makes real partial progress on the FIRST
      // fire — those bytes genuinely reach the file, like a disk filling up
      // mid-write — and fails hard (error or crash) from the second fire on,
      // so the caller's short-write retry loop cannot quietly complete.
      if (injection.config.short_write >= 0 && injection.ordinal == 1) {
        const std::size_t n = std::min(
            count, static_cast<std::size_t>(injection.config.short_write));
        const long written = ::write(fd, buf, n);
        if (injection.config.crash) throw CrashError();
        return written;
      }
      if (Fail(injection, static_cast<long>(-1)) < 0 && errno == EINTR) {
        continue;
      }
      return -1;
    }
    const long written = ::write(fd, buf, count);
    if (written < 0 && errno == EINTR) continue;
    return written;
  }
}

int Fsync(int fd, const char* path) {
  Injection injection;
  if (ShouldFail("fs/fsync", path, &injection)) return Fail(injection, -1);
  return ::fsync(fd);
}

// Close is deliberately NOT retried on EINTR: POSIX leaves the fd state
// unspecified after a failed close, so a retry could close a descriptor
// another thread just received from the kernel.
int Close(int fd, const char* path) {
  Injection injection;
  if (ShouldFail("fs/close", path, &injection)) {
    // POSIX leaves the fd state unspecified after a failed close; really
    // close so tests do not leak descriptors (crash configs do leak one —
    // the simulated process died holding it).
    if (!injection.config.crash) ::close(fd);
    return Fail(injection, -1);
  }
  return ::close(fd);
}

int Rename(const char* from, const char* to) {
  Injection injection;
  if (ShouldFail("fs/rename", to, &injection)) return Fail(injection, -1);
  return std::rename(from, to);
}

int Remove(const char* path) {
  Injection injection;
  if (ShouldFail("fs/remove", path, &injection)) return Fail(injection, -1);
  return std::remove(path);
}

int Fstat(int fd, struct ::stat* st, const char* path) {
  Injection injection;
  if (ShouldFail("fs/fstat", path, &injection)) return Fail(injection, -1);
  return ::fstat(fd, st);
}

int Ftruncate(int fd, long long length, const char* path) {
  Injection injection;
  if (ShouldFail("fs/ftruncate", path, &injection)) return Fail(injection, -1);
  return ::ftruncate(fd, static_cast<off_t>(length));
}

void* Mmap(std::size_t length, int prot, int flags, int fd,
           const char* path) {
  Injection injection;
  if (ShouldFail("fs/mmap", path, &injection)) {
    return Fail(injection, MAP_FAILED);
  }
  return ::mmap(nullptr, length, prot, flags, fd, 0);
}

}  // namespace mvp::fault::fs

#endif  // MVPTREE_FAULT_FS_POSIX

#include "fault/failpoint.h"

#include <map>
#include <random>
#include <utility>

#include "common/thread_annotations.h"

namespace mvp::fault {

std::atomic<int> Failpoints::armed_count_{0};

struct Failpoints::Impl {
  struct State {
    FailpointConfig config;
    std::uint64_t evaluations = 0;  // matching evaluations only
    std::uint64_t fires = 0;
    std::mt19937_64 rng;
  };

  Mutex mu;
  std::map<std::string, State> armed MVP_GUARDED_BY(mu);
};

Failpoints& Failpoints::Instance() {
  static Failpoints* instance = new Failpoints();  // leaked: outlives statics
  return *instance;
}

Failpoints::Impl& Failpoints::impl() {
  static Impl* impl = new Impl();
  return *impl;
}

void Failpoints::Arm(const std::string& name, FailpointConfig config) {
  Impl& i = impl();
  MutexLock lock(&i.mu);
  auto [it, inserted] = i.armed.try_emplace(name);
  if (inserted) armed_count_.fetch_add(1, std::memory_order_relaxed);
  it->second = Impl::State{};
  it->second.rng.seed(config.seed);
  it->second.config = std::move(config);
}

void Failpoints::Disarm(const std::string& name) {
  Impl& i = impl();
  MutexLock lock(&i.mu);
  if (i.armed.erase(name) > 0) {
    armed_count_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void Failpoints::DisarmAll() {
  Impl& i = impl();
  MutexLock lock(&i.mu);
  armed_count_.fetch_sub(static_cast<int>(i.armed.size()),
                         std::memory_order_relaxed);
  i.armed.clear();
}

bool Failpoints::Fire(const std::string& name, std::string_view detail,
                      FailpointConfig* config, std::uint64_t* fire_ordinal) {
  Impl& i = impl();
  MutexLock lock(&i.mu);
  auto it = i.armed.find(name);
  if (it == i.armed.end()) return false;
  Impl::State& state = it->second;
  const FailpointConfig& cfg = state.config;
  if (!cfg.match.empty() && detail.find(cfg.match) == std::string_view::npos) {
    return false;
  }
  const std::uint64_t ordinal = state.evaluations++;
  if (ordinal < cfg.skip) return false;
  if (state.fires >= cfg.max_fires) return false;
  if (cfg.probability < 1.0) {
    std::uniform_real_distribution<double> coin(0.0, 1.0);
    if (coin(state.rng) >= cfg.probability) return false;
  }
  ++state.fires;
  if (config != nullptr) *config = cfg;
  if (fire_ordinal != nullptr) *fire_ordinal = state.fires;
  return true;
}

std::uint64_t Failpoints::evaluations(const std::string& name) {
  Impl& i = impl();
  MutexLock lock(&i.mu);
  auto it = i.armed.find(name);
  return it == i.armed.end() ? 0 : it->second.evaluations;
}

std::uint64_t Failpoints::fires(const std::string& name) {
  Impl& i = impl();
  MutexLock lock(&i.mu);
  auto it = i.armed.find(name);
  return it == i.armed.end() ? 0 : it->second.fires;
}

}  // namespace mvp::fault

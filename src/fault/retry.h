#ifndef MVPTREE_FAULT_RETRY_H_
#define MVPTREE_FAULT_RETRY_H_

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <functional>
#include <random>
#include <thread>
#include <type_traits>
#include <utility>

#include "common/status.h"

/// \file
/// Retry with exponential backoff and jitter, for transient I/O failures.
/// Used by AsyncSnapshotLoader::LoadAndSwap so a snapshot load that hits a
/// transient error (NFS hiccup, antivirus holding a handle, injected
/// failpoint) is retried a bounded number of times before the loader gives
/// up and keeps serving the old generation.

namespace mvp::fault {

struct RetryOptions {
  /// Total attempts including the first one. 1 = no retries.
  int max_attempts = 3;

  /// Sleep before attempt k (k >= 2) is
  ///   initial_backoff * backoff_multiplier^(k-2), capped at max_backoff,
  /// then scaled by a random factor in [1 - jitter, 1] so synchronized
  /// retry storms decorrelate.
  std::chrono::nanoseconds initial_backoff = std::chrono::milliseconds(1);
  double backoff_multiplier = 2.0;
  std::chrono::nanoseconds max_backoff = std::chrono::seconds(1);
  double jitter = 0.5;
  std::uint64_t seed = 0x9e3779b97f4a7c15ull;

  /// Which failures are worth retrying. Default: transient I/O only —
  /// corruption or invalid-argument will not get better on a second try.
  std::function<bool(const Status&)> retryable;

  /// Test seam: replaces std::this_thread::sleep_for.
  std::function<void(std::chrono::nanoseconds)> sleep;
};

namespace internal {

inline bool DefaultRetryable(const Status& status) {
  return status.code() == StatusCode::kIOError;
}

inline const Status& StatusOf(const Status& s) { return s; }
template <typename T>
Status StatusOf(const Result<T>& r) { return r.status(); }

}  // namespace internal

/// Invokes `fn` (returning `Status` or `Result<T>`) up to
/// `options.max_attempts` times, sleeping with exponential backoff + jitter
/// between attempts, and returns the first success or the last failure.
/// Only failures `options.retryable` approves are retried; others return
/// immediately.
template <typename F>
auto RetryWithBackoff(const RetryOptions& options, F&& fn)
    -> std::invoke_result_t<F&> {
  const int attempts = options.max_attempts < 1 ? 1 : options.max_attempts;
  std::mt19937_64 rng(options.seed);
  std::chrono::nanoseconds backoff = options.initial_backoff;
  for (int attempt = 1;; ++attempt) {
    auto result = fn();
    const Status status = internal::StatusOf(result);
    if (status.ok() || attempt >= attempts) return result;
    const bool retry = options.retryable ? options.retryable(status)
                                         : internal::DefaultRetryable(status);
    if (!retry) return result;

    std::uniform_real_distribution<double> factor(1.0 - options.jitter, 1.0);
    const auto sleep_for = std::chrono::nanoseconds(static_cast<std::int64_t>(
        static_cast<double>(std::min(backoff, options.max_backoff).count()) *
        factor(rng)));
    if (options.sleep) {
      options.sleep(sleep_for);
    } else if (sleep_for.count() > 0) {
      std::this_thread::sleep_for(sleep_for);
    }
    backoff = std::chrono::nanoseconds(static_cast<std::int64_t>(
        static_cast<double>(backoff.count()) * options.backoff_multiplier));
  }
}

}  // namespace mvp::fault

#endif  // MVPTREE_FAULT_RETRY_H_

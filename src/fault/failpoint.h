#ifndef MVPTREE_FAULT_FAILPOINT_H_
#define MVPTREE_FAULT_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

/// \file
/// Deterministic fault injection, in the LevelDB/RocksDB sync-point style.
///
/// Production code marks interesting failure sites with named failpoints —
/// either the `MVP_FAILPOINT(name)` macro for logic-level sites ("pretend
/// this load failed") or, for syscall-level sites, the `fault::fs` seam in
/// fault_fs.h which evaluates failpoints internally. Tests *arm* a failpoint
/// by name with a trigger policy (fire on the Nth evaluation, fire the first
/// K times, fire with seeded probability p, fire only for paths containing a
/// substring) and the marked site misbehaves on demand; everything is exact
/// and replayable, no real disk needs to fill up.
///
/// Cost when nothing is armed — the only state production ever sees — is a
/// single relaxed atomic load per site. The registry mutex is taken only
/// while at least one failpoint is armed (i.e. inside tests).
///
/// This header depends on nothing but the standard library so that low-level
/// code (common/serialize.cc, snapshot/mmap_file.h) can include it without
/// layering cycles.
///
/// Thread-safety analysis: the registry's map lives behind an annotated
/// mvp::Mutex in failpoint.cc (MVP_GUARDED_BY); the armed-count fast path
/// is a lone relaxed atomic, deliberately outside any capability.

namespace mvp::fault {

/// Trigger policy plus the behaviour the injection site should exhibit.
/// Trigger fields compose: an evaluation fires iff its detail string matches
/// `match`, at least `skip` matching evaluations came before it, fewer than
/// `max_fires` fires have happened, and the seeded coin lands under
/// `probability`.
struct FailpointConfig {
  /// Matching evaluations ignored before the failpoint starts firing.
  /// `skip = 2` fires on the 3rd matching evaluation — this is how tests
  /// walk a sequence of identical syscalls ("fail the 2nd write").
  std::uint64_t skip = 0;

  /// Fires after which the failpoint goes quiet again. 1 = one-shot
  /// (the classic "transient failure"); default = unlimited.
  std::uint64_t max_fires = UINT64_MAX;

  /// Probability that an eligible evaluation fires, decided by an RNG
  /// seeded with `seed` (so probabilistic runs replay exactly).
  double probability = 1.0;
  std::uint64_t seed = 0;

  /// If non-empty, only evaluations whose detail string (e.g. the file path
  /// at an fs seam site) contains this substring are considered at all —
  /// they alone are counted, skipped, and fired.
  std::string match;

  /// -- Behaviour hints, interpreted by the injection site. --------------

  /// errno the fault_fs seam reports when this fires (0 = seam default EIO).
  int error_code = 0;

  /// fault_fs: throw CrashError instead of returning an error, simulating
  /// the process dying at that exact syscall. See fault_fs.h.
  bool crash = false;

  /// fault_fs write sites: on the first fire, actually write this many bytes
  /// (a short write that made partial progress); later fires fail outright.
  /// Negative = disabled.
  std::int64_t short_write = -1;
};

/// Process-wide registry of named failpoints. All methods are thread-safe.
class Failpoints {
 public:
  static Failpoints& Instance();

  /// Arms (or re-arms, resetting counters) `name` with `config`.
  void Arm(const std::string& name, FailpointConfig config);

  /// Disarms `name`; evaluations of it become free again. No-op if unknown.
  void Disarm(const std::string& name);

  /// Disarms everything. Tests call this in TearDown so state never leaks
  /// across test cases.
  void DisarmAll();

  /// Evaluates failpoint `name` for an event described by `detail` (the
  /// fault_fs seam passes the file path; MVP_FAILPOINT passes nothing).
  /// Returns true if the site should misbehave; if so and `config` is
  /// non-null, the armed config is copied out so the site can read the
  /// behaviour hints (error_code / crash / short_write), and
  /// `fire_ordinal` (when non-null) receives this fire's 1-based ordinal —
  /// which lets a write site make partial progress on the first fire and
  /// fail hard on the next.
  bool Fire(const std::string& name, std::string_view detail = {},
            FailpointConfig* config = nullptr,
            std::uint64_t* fire_ordinal = nullptr);

  /// True iff any failpoint is armed. One relaxed load; this is the
  /// fast-path guard MVP_FAILPOINT and the fs seam use.
  static bool AnyArmed() {
    return armed_count_.load(std::memory_order_relaxed) > 0;
  }

  /// Observability for tests: matching evaluations / fires of `name` since
  /// it was last armed (0 if not armed).
  std::uint64_t evaluations(const std::string& name);
  std::uint64_t fires(const std::string& name);

 private:
  Failpoints() = default;
  struct Impl;
  Impl& impl();

  static std::atomic<int> armed_count_;
};

/// Arms `name` for the lifetime of the scope, then disarms it. The idiomatic
/// way to inject inside a test body.
class ScopedFailpoint {
 public:
  ScopedFailpoint(std::string name, FailpointConfig config)
      : name_(std::move(name)) {
    Failpoints::Instance().Arm(name_, std::move(config));
  }
  ~ScopedFailpoint() { Failpoints::Instance().Disarm(name_); }
  ScopedFailpoint(const ScopedFailpoint&) = delete;
  ScopedFailpoint& operator=(const ScopedFailpoint&) = delete;

 private:
  std::string name_;
};

}  // namespace mvp::fault

/// Evaluates to true when the named failpoint is armed and fires. Use in
/// production code as:
///
///   if (MVP_FAILPOINT("snapshot/load")) return Status::IOError("injected");
///
/// Disarmed cost: one relaxed atomic load and a predicted-not-taken branch.
#define MVP_FAILPOINT(name) \
  (::mvp::fault::Failpoints::AnyArmed() && \
   ::mvp::fault::Failpoints::Instance().Fire((name)))

#endif  // MVPTREE_FAULT_FAILPOINT_H_

#ifndef MVPTREE_FAULT_FAULT_NET_H_
#define MVPTREE_FAULT_FAULT_NET_H_

#include "fault/fault_fs.h"  // CrashError, the POSIX platform gate

/// \file
/// Injectable socket seam — the network twin of fault::fs. Everything in
/// src/net/ routes its socket syscalls through these wrappers instead of
/// calling ::socket / ::connect / ::send / ::recv directly (the repo lint
/// enforces this outside src/fault/). Each wrapper evaluates a failpoint
/// named after the operation — "net/socket", "net/bind", "net/listen",
/// "net/accept", "net/connect", "net/send", "net/recv", "net/close",
/// "net/shutdown" — with a caller-supplied detail string (an endpoint or
/// role label such as "server:accept" or "client:127.0.0.1:4717"), so a
/// test can make *the third recv on the replication connection
/// specifically* fail with ECONNRESET, or a send mid-frame throw
/// CrashError, without real network trouble.
///
/// Crash configs mean the same thing as in fault::fs: the wrapper throws
/// CrashError *instead of performing the operation*, simulating the process
/// dying at that exact syscall. Send sites honour `short_write` the same
/// way fs::Write does — the first fire really transmits that many bytes
/// before failing, reproducing a connection dropped mid-frame
/// deterministically.
///
/// With no failpoint armed every wrapper is the raw syscall plus one
/// relaxed atomic load.

#if defined(MVPTREE_FAULT_FS_POSIX)

#include <sys/socket.h>
#include <sys/types.h>

#include <cstddef>

namespace mvp::fault::net {

/// ::socket. Failpoint "net/socket" (detail: caller label) → -1 / crashes.
int Socket(int domain, int type, int protocol, const char* detail);

/// ::bind. Failpoint "net/bind" (detail: caller label).
int Bind(int fd, const struct ::sockaddr* addr, socklen_t len,
         const char* detail);

/// ::listen. Failpoint "net/listen" (detail: caller label).
int Listen(int fd, int backlog, const char* detail);

/// ::accept. Failpoint "net/accept" (detail: caller label). Peer address is
/// not reported — loopback serving has no use for it.
int Accept(int fd, const char* detail);

/// ::connect. Failpoint "net/connect" (detail: caller label).
int Connect(int fd, const struct ::sockaddr* addr, socklen_t len,
            const char* detail);

/// ::send (MSG_NOSIGNAL — a dead peer yields EPIPE, never SIGPIPE).
/// Failpoint "net/send" (detail: caller label). A fire with
/// `short_write >= 0` really transmits min(short_write, count) bytes before
/// failing or crashing — the mid-frame disconnect.
long Send(int fd, const void* buf, std::size_t count, const char* detail);

/// ::recv. Failpoint "net/recv" (detail: caller label) → -1 (default errno
/// ECONNRESET) / crashes.
long Recv(int fd, void* buf, std::size_t count, const char* detail);

/// ::close on a socket fd. Failpoint "net/close" (detail: caller label).
int CloseSocket(int fd, const char* detail);

/// ::shutdown. Failpoint "net/shutdown" (detail: caller label). Used to
/// unblock a peer's recv/accept during teardown.
int ShutdownSocket(int fd, int how, const char* detail);

/// ::getsockname — reads back the kernel-assigned port after binding port
/// 0. No failpoint: it cannot fail in a way a drill cares about, and it is
/// only called once per listener.
int GetSockName(int fd, struct ::sockaddr* addr, socklen_t* len);

/// ::setsockopt. No failpoint: best-effort socket tuning (SO_REUSEADDR);
/// callers ignore failures.
int SetSockOpt(int fd, int level, int optname, const void* optval,
               socklen_t optlen);

}  // namespace mvp::fault::net

#endif  // MVPTREE_FAULT_FS_POSIX

#endif  // MVPTREE_FAULT_FAULT_NET_H_

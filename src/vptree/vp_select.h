#ifndef MVPTREE_VPTREE_VP_SELECT_H_
#define MVPTREE_VPTREE_VP_SELECT_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/macros.h"
#include "common/rng.h"

/// \file
/// Vantage-point selection strategies, shared by vp-trees and mvp-trees.
///
/// The paper picks vantage points randomly (its experiments average over 4
/// random seeds) and notes that "any optimization technique (such as a
/// heuristic to chose the best vantage point) for vp-trees can also be
/// applied to the mvp-trees" (§4.2). The max-spread heuristic of [Yia93] is
/// provided as that optimization: sample a few candidates, estimate each
/// candidate's distance spread against a random subset, keep the widest.

namespace mvp::vptree {

/// Which vantage-point picker a tree uses.
enum class VpSelection {
  kRandom,     ///< uniform random data point (the paper's default)
  kMaxSpread,  ///< [Yia93]: candidate with maximal distance variance
};

/// Tuning for kMaxSpread (ignored by kRandom).
struct VpSelectOptions {
  VpSelection strategy = VpSelection::kRandom;
  std::size_t candidates = 8;  ///< sampled candidate vantage points
  std::size_t sample = 24;     ///< sampled points to estimate spread against
};

/// Picks a vantage point among positions [begin, end) of a working array.
/// `object_at(i)` must return a reference to the object at position i;
/// `metric` the distance function. Distance computations performed by the
/// heuristic are added to *distance_count. Returns the chosen position.
template <typename ObjectAt, typename Metric>
std::size_t SelectVantagePoint(std::size_t begin, std::size_t end,
                               const ObjectAt& object_at, const Metric& metric,
                               Rng& rng, const VpSelectOptions& options,
                               std::uint64_t* distance_count) {
  MVP_DCHECK(begin < end);
  const std::size_t count = end - begin;
  if (options.strategy == VpSelection::kRandom || count <= 2) {
    return begin + rng.NextIndex(count);
  }

  // [Yia93]-style: evaluate `candidates` random positions against `sample`
  // random positions; spread = second moment about the median distance.
  const std::size_t num_candidates = std::min(options.candidates, count);
  const std::size_t num_samples = std::min(options.sample, count);
  std::vector<std::size_t> candidates = rng.SampleIndices(count, num_candidates);
  std::vector<std::size_t> sample = rng.SampleIndices(count, num_samples);

  std::size_t best_pos = begin + candidates[0];
  double best_spread = -1.0;
  std::vector<double> dists(sample.size());
  for (const std::size_t cand_off : candidates) {
    const std::size_t cand = begin + cand_off;
    for (std::size_t s = 0; s < sample.size(); ++s) {
      dists[s] = metric(object_at(cand), object_at(begin + sample[s]));
    }
    if (distance_count != nullptr) *distance_count += sample.size();
    // Median via nth_element, then the second moment about it.
    std::vector<double> sorted = dists;
    const std::size_t mid = sorted.size() / 2;
    std::nth_element(sorted.begin(),
                     sorted.begin() + static_cast<std::ptrdiff_t>(mid),
                     sorted.end());
    const double median = sorted[mid];
    double spread = 0.0;
    for (const double d : dists) spread += (d - median) * (d - median);
    if (spread > best_spread) {
      best_spread = spread;
      best_pos = cand;
    }
  }
  return best_pos;
}

}  // namespace mvp::vptree

#endif  // MVPTREE_VPTREE_VP_SELECT_H_

#ifndef MVPTREE_VPTREE_VP_TREE_H_
#define MVPTREE_VPTREE_VP_TREE_H_

#include <algorithm>
#include <limits>
#include <memory>
#include <queue>
#include <utility>
#include <vector>

#include "common/codec.h"
#include "common/macros.h"
#include "common/query.h"
#include "common/rng.h"
#include "common/status.h"
#include "metric/metric.h"
#include "vptree/vp_select.h"

/// \file
/// The vantage-point tree [Uhl91, Yia93] — the paper's comparison baseline
/// (§3.3). Every node holds one vantage point chosen among the node's data
/// points; the remaining points are ordered by distance to it and split into
/// `order` groups of equal cardinality at m-1 cutoff values ("spherical
/// cuts"); each group is indexed by a child subtree built the same way.
/// Range search prunes a child whenever the triangle inequality proves the
/// query ball cannot intersect the child's shell (Appendix of the paper).
///
/// The vp-tree deliberately does NOT reuse vantage points across siblings
/// and does NOT retain construction-time distances in its leaves — the two
/// costs the mvp-tree (core/mvp_tree.h) removes.

namespace mvp::vptree {

template <typename Object, metric::MetricFor<Object> Metric>
class VpTree {
 public:
  /// Construction parameters.
  struct Options {
    /// Branching factor m ("the order of the tree corresponds to the number
    /// of partitions", §1). Paper experiments use 2 and 3.
    int order = 2;
    /// Data points per leaf bucket. The paper's vp-tree keeps individual
    /// data-point references in leaves; 1 reproduces that exactly.
    int leaf_capacity = 1;
    /// Vantage-point picker (paper default: random).
    VpSelectOptions selection;
    /// Seed for the random choices ("a different seed ... is used in each
    /// run", §5.2).
    std::uint64_t seed = 0;
    /// Ablation: store exact per-child [min,max] distance bounds instead of
    /// deriving the lower bound from the previous child's cutoff.
    bool store_exact_bounds = false;
  };

  /// Builds a vp-tree over `objects` (ids = positions in the input vector).
  /// Fails with InvalidArgument on bad options. An empty input is valid.
  static Result<VpTree> Build(std::vector<Object> objects, Metric metric,
                              const Options& options = Options{}) {
    if (options.order < 2) {
      return Status::InvalidArgument("vp-tree order must be >= 2");
    }
    if (options.leaf_capacity < 1) {
      return Status::InvalidArgument("vp-tree leaf capacity must be >= 1");
    }
    VpTree tree(std::move(objects), std::move(metric), options);
    tree.BuildTree();
    return tree;
  }

  /// All objects within `radius` of `query` (closed ball), sorted by
  /// distance then id. §3.3's search generalized to order m.
  std::vector<Neighbor> RangeSearch(const Object& query, double radius,
                                    SearchStats* stats = nullptr) const {
    MVP_DCHECK(radius >= 0);
    std::vector<Neighbor> result;
    SearchStats local;
    if (root_ != nullptr) {
      RangeSearchNode(*root_, query, radius, result, local);
    }
    std::sort(result.begin(), result.end(), NeighborLess);
    if (stats != nullptr) Merge(stats, local);
    return result;
  }

  /// The k nearest objects via shrinking-radius branch-and-bound ([Chi94]
  /// adapts vp-trees to nearest-neighbor queries this way). Sorted by
  /// distance then id.
  std::vector<Neighbor> KnnSearch(const Object& query, std::size_t k,
                                  SearchStats* stats = nullptr) const {
    std::vector<Neighbor> heap;  // max-heap on NeighborLess
    SearchStats local;
    if (root_ != nullptr && k > 0) {
      KnnSearchNode(*root_, query, k, heap, local);
    }
    std::sort_heap(heap.begin(), heap.end(), NeighborLess);
    if (stats != nullptr) Merge(stats, local);
    return heap;
  }

  std::size_t size() const { return objects_.size(); }
  const Object& object(std::size_t id) const {
    MVP_DCHECK(id < objects_.size());
    return objects_[id];
  }
  const Metric& metric() const { return metric_; }
  int order() const { return options_.order; }

  /// Structural statistics (node/vantage-point counts, height,
  /// construction cost in distance computations).
  TreeStats Stats() const {
    TreeStats stats;
    stats.construction_distance_computations = construction_distances_;
    if (root_ != nullptr) CollectStats(*root_, 1, stats);
    return stats;
  }

  /// Serializes the tree (same conventions as MvpTree::Serialize: the
  /// metric is not stored and must be supplied again at load time).
  template <CodecFor<Object> Codec>
  Status Serialize(BinaryWriter* writer, const Codec& codec) const {
    writer->Write<std::uint32_t>(kMagic);
    writer->Write<std::uint32_t>(kFormatVersion);
    writer->Write<std::int32_t>(options_.order);
    writer->Write<std::int32_t>(options_.leaf_capacity);
    writer->Write<std::uint8_t>(options_.store_exact_bounds ? 1 : 0);
    writer->Write<std::uint64_t>(objects_.size());
    for (const Object& obj : objects_) codec.Write(*writer, obj);
    WriteNode(writer, root_.get());
    return Status::OK();
  }

  /// Reconstructs a serialized vp-tree; rejects corrupt input with a
  /// Corruption status.
  template <CodecFor<Object> Codec>
  static Result<VpTree> Deserialize(BinaryReader* reader, Metric metric,
                                    const Codec& codec) {
    std::uint32_t magic = 0, version = 0;
    MVP_RETURN_NOT_OK(reader->Read<std::uint32_t>(&magic));
    if (magic != kMagic) return Status::Corruption("bad vp-tree magic");
    MVP_RETURN_NOT_OK(reader->Read<std::uint32_t>(&version));
    if (version != kFormatVersion) {
      return Status::NotSupported("unknown vp-tree format version");
    }
    Options options;
    std::uint8_t bounds_flag = 0;
    MVP_RETURN_NOT_OK(reader->Read<std::int32_t>(&options.order));
    MVP_RETURN_NOT_OK(reader->Read<std::int32_t>(&options.leaf_capacity));
    MVP_RETURN_NOT_OK(reader->Read<std::uint8_t>(&bounds_flag));
    options.store_exact_bounds = bounds_flag != 0;
    if (options.order < 2 || options.leaf_capacity < 1) {
      return Status::Corruption("vp-tree options out of range");
    }
    std::uint64_t count = 0;
    MVP_RETURN_NOT_OK(reader->Read<std::uint64_t>(&count));
    if (count > reader->remaining()) {
      return Status::Corruption("object count exceeds buffer");
    }
    std::vector<Object> objects(static_cast<std::size_t>(count));
    for (auto& obj : objects) MVP_RETURN_NOT_OK(codec.Read(*reader, &obj));
    VpTree tree(std::move(objects), std::move(metric), options);
    auto root = ReadNode(reader, tree, 0);
    if (!root.ok()) return root.status();
    tree.root_ = std::move(root).ValueOrDie();
    return tree;
  }

 private:
  static constexpr std::uint32_t kMagic = 0x54505656;  // "VVPT"
  static constexpr std::uint32_t kFormatVersion = 1;
  static constexpr std::size_t kMaxDeserializeDepth = 512;
  struct Node {
    bool is_leaf = false;
    std::size_t vp_id = 0;                  // internal: the vantage point
    std::vector<double> lower;              // per-child shell lower bound
    std::vector<double> upper;              // per-child shell upper bound
    std::vector<std::unique_ptr<Node>> children;
    std::vector<std::size_t> bucket;        // leaf: data-point ids
  };

  /// Construction working entry: a data point plus its distance to the
  /// current vantage point.
  struct Entry {
    std::size_t id;
    double dist;
  };

  VpTree(std::vector<Object> objects, Metric metric, const Options& options)
      : objects_(std::move(objects)),
        metric_(std::move(metric)),
        options_(options) {}

  void BuildTree() {
    Rng rng(options_.seed);
    std::vector<Entry> entries(objects_.size());
    for (std::size_t i = 0; i < objects_.size(); ++i) {
      entries[i] = Entry{i, 0.0};
    }
    root_ = BuildNode(entries, 0, entries.size(), rng);
  }

  std::unique_ptr<Node> BuildNode(std::vector<Entry>& entries,
                                  std::size_t begin, std::size_t end,
                                  Rng& rng) {
    if (begin == end) return nullptr;
    const std::size_t count = end - begin;
    if (count <= static_cast<std::size_t>(options_.leaf_capacity)) {
      auto leaf = std::make_unique<Node>();
      leaf->is_leaf = true;
      leaf->bucket.reserve(count);
      for (std::size_t i = begin; i < end; ++i) {
        leaf->bucket.push_back(entries[i].id);
      }
      return leaf;
    }

    auto node = std::make_unique<Node>();
    // Pick the vantage point among this node's points and move it out of
    // the working range.
    const std::size_t vp_pos = SelectVantagePoint(
        begin, end,
        [&](std::size_t i) -> const Object& { return objects_[entries[i].id]; },
        metric_, rng, options_.selection, &construction_distances_);
    std::swap(entries[begin], entries[vp_pos]);
    node->vp_id = entries[begin].id;
    const Object& vp = objects_[node->vp_id];

    // "the distances of this vantage point from all other points ... are
    // computed. Then, these points are sorted ... with respect to their
    // distances from the vantage point" (§1).
    for (std::size_t i = begin + 1; i < end; ++i) {
      entries[i].dist = metric_(vp, objects_[entries[i].id]);
    }
    construction_distances_ += count - 1;
    std::sort(entries.begin() + static_cast<std::ptrdiff_t>(begin) + 1,
              entries.begin() + static_cast<std::ptrdiff_t>(end),
              [](const Entry& a, const Entry& b) { return a.dist < b.dist; });

    // Positional split into `order` groups of equal cardinality.
    const std::size_t m = static_cast<std::size_t>(options_.order);
    const std::size_t points = count - 1;
    const std::size_t first = begin + 1;
    node->children.resize(m);
    node->lower.assign(m, 0.0);
    node->upper.assign(m, std::numeric_limits<double>::infinity());
    double prev_cutoff = 0.0;
    for (std::size_t child = 0; child < m; ++child) {
      const std::size_t group_begin = first + points * child / m;
      const std::size_t group_end = first + points * (child + 1) / m;
      if (group_begin == group_end) continue;  // tiny node: empty child
      if (options_.store_exact_bounds) {
        node->lower[child] = entries[group_begin].dist;
        node->upper[child] = entries[group_end - 1].dist;
      } else {
        // Faithful mode: m-1 cutoff values. Child i's shell is bounded above
        // by its boundary cutoff and below by the previous cutoff; the
        // innermost shell starts at 0 and the outermost is unbounded.
        node->lower[child] = child == 0 ? 0.0 : prev_cutoff;
        node->upper[child] =
            child + 1 == m ? std::numeric_limits<double>::infinity()
                           : entries[group_end - 1].dist;
        prev_cutoff = entries[group_end - 1].dist;
      }
      node->children[child] = BuildNode(entries, group_begin, group_end, rng);
    }
    return node;
  }

  void RangeSearchNode(const Node& node, const Object& query, double radius,
                       std::vector<Neighbor>& result,
                       SearchStats& stats) const {
    ++stats.nodes_visited;
    if (node.is_leaf) {
      stats.leaf_points_seen += node.bucket.size();
      for (const std::size_t id : node.bucket) {
        const double d = metric_(query, objects_[id]);
        ++stats.distance_computations;
        if (d <= radius) result.push_back(Neighbor{id, d});
      }
      return;
    }
    const double d = metric_(query, objects_[node.vp_id]);
    ++stats.distance_computations;
    if (d <= radius) result.push_back(Neighbor{node.vp_id, d});
    for (std::size_t child = 0; child < node.children.size(); ++child) {
      if (node.children[child] == nullptr) continue;
      // Enter child iff [d-r, d+r] intersects the child's shell (the
      // triangle-inequality argument of the paper's Appendix).
      if (d - radius <= node.upper[child] && d + radius >= node.lower[child]) {
        RangeSearchNode(*node.children[child], query, radius, result, stats);
      }
    }
  }

  /// Current pruning radius: the k-th best distance once k results exist.
  static double Tau(const std::vector<Neighbor>& heap, std::size_t k) {
    return heap.size() < k ? std::numeric_limits<double>::infinity()
                           : heap.front().distance;
  }

  static void Offer(std::vector<Neighbor>& heap, std::size_t k, Neighbor n) {
    if (heap.size() < k) {
      heap.push_back(n);
      std::push_heap(heap.begin(), heap.end(), NeighborLess);
    } else if (NeighborLess(n, heap.front())) {
      std::pop_heap(heap.begin(), heap.end(), NeighborLess);
      heap.back() = n;
      std::push_heap(heap.begin(), heap.end(), NeighborLess);
    }
  }

  void KnnSearchNode(const Node& node, const Object& query, std::size_t k,
                     std::vector<Neighbor>& heap, SearchStats& stats) const {
    ++stats.nodes_visited;
    if (node.is_leaf) {
      stats.leaf_points_seen += node.bucket.size();
      for (const std::size_t id : node.bucket) {
        const double d = metric_(query, objects_[id]);
        ++stats.distance_computations;
        Offer(heap, k, Neighbor{id, d});
      }
      return;
    }
    const double d = metric_(query, objects_[node.vp_id]);
    ++stats.distance_computations;
    Offer(heap, k, Neighbor{node.vp_id, d});

    // Visit children in order of their lower-bound distance to the query so
    // the pruning radius shrinks as fast as possible.
    struct Ranked {
      double bound;
      std::size_t child;
    };
    std::vector<Ranked> ranked;
    ranked.reserve(node.children.size());
    for (std::size_t child = 0; child < node.children.size(); ++child) {
      if (node.children[child] == nullptr) continue;
      const double below = node.lower[child] - d;  // query inside the shell
      const double above = d - node.upper[child];  // query outside the shell
      ranked.push_back(Ranked{std::max({0.0, below, above}), child});
    }
    std::sort(ranked.begin(), ranked.end(),
              [](const Ranked& a, const Ranked& b) { return a.bound < b.bound; });
    for (const Ranked& r : ranked) {
      if (r.bound > Tau(heap, k)) break;  // all remaining bounds are larger
      KnnSearchNode(*node.children[r.child], query, k, heap, stats);
    }
  }

  static void WriteNode(BinaryWriter* writer, const Node* node) {
    if (node == nullptr) {
      writer->Write<std::uint8_t>(0);
      return;
    }
    writer->Write<std::uint8_t>(node->is_leaf ? 1 : 2);
    if (node->is_leaf) {
      writer->Write<std::uint64_t>(node->bucket.size());
      for (const std::size_t id : node->bucket) {
        writer->Write<std::uint64_t>(id);
      }
      return;
    }
    writer->Write<std::uint64_t>(node->vp_id);
    writer->WriteVector(node->lower);
    writer->WriteVector(node->upper);
    for (const auto& child : node->children) WriteNode(writer, child.get());
  }

  static Result<std::unique_ptr<Node>> ReadNode(BinaryReader* reader,
                                                const VpTree& tree,
                                                std::size_t depth) {
    if (depth > kMaxDeserializeDepth) {
      return Status::Corruption("vp-tree nesting too deep");
    }
    std::uint8_t tag = 0;
    MVP_RETURN_NOT_OK(reader->Read<std::uint8_t>(&tag));
    if (tag == 0) return std::unique_ptr<Node>();
    if (tag > 2) return Status::Corruption("bad vp-tree node tag");
    auto node = std::make_unique<Node>();
    node->is_leaf = tag == 1;
    const std::size_t n = tree.objects_.size();
    if (node->is_leaf) {
      std::uint64_t bucket_size = 0;
      MVP_RETURN_NOT_OK(reader->Read<std::uint64_t>(&bucket_size));
      if (bucket_size > reader->remaining()) {
        return Status::Corruption("leaf bucket size exceeds buffer");
      }
      node->bucket.resize(static_cast<std::size_t>(bucket_size));
      for (auto& id : node->bucket) {
        std::uint64_t raw = 0;
        MVP_RETURN_NOT_OK(reader->Read<std::uint64_t>(&raw));
        if (raw >= n) return Status::Corruption("leaf id out of range");
        id = static_cast<std::size_t>(raw);
      }
      return node;
    }
    std::uint64_t vp = 0;
    MVP_RETURN_NOT_OK(reader->Read<std::uint64_t>(&vp));
    if (vp >= n) return Status::Corruption("vantage point id out of range");
    node->vp_id = static_cast<std::size_t>(vp);
    const std::size_t m = static_cast<std::size_t>(tree.options_.order);
    MVP_RETURN_NOT_OK(reader->ReadVector(&node->lower));
    MVP_RETURN_NOT_OK(reader->ReadVector(&node->upper));
    if (node->lower.size() != m || node->upper.size() != m) {
      return Status::Corruption("internal node bound arrays malformed");
    }
    node->children.resize(m);
    for (auto& child : node->children) {
      auto sub = ReadNode(reader, tree, depth + 1);
      if (!sub.ok()) return sub.status();
      child = std::move(sub).ValueOrDie();
    }
    return node;
  }

  void CollectStats(const Node& node, std::size_t depth,
                    TreeStats& stats) const {
    stats.height = std::max(stats.height, depth);
    if (node.is_leaf) {
      ++stats.num_leaf_nodes;
      stats.num_leaf_points += node.bucket.size();
      return;
    }
    ++stats.num_internal_nodes;
    ++stats.num_vantage_points;
    for (const auto& child : node.children) {
      if (child != nullptr) CollectStats(*child, depth + 1, stats);
    }
  }

  static void Merge(SearchStats* out, const SearchStats& in) {
    out->distance_computations += in.distance_computations;
    out->nodes_visited += in.nodes_visited;
    out->leaf_points_seen += in.leaf_points_seen;
    out->leaf_points_filtered += in.leaf_points_filtered;
  }

  std::vector<Object> objects_;
  Metric metric_;
  Options options_;
  std::unique_ptr<Node> root_;
  std::uint64_t construction_distances_ = 0;
};

}  // namespace mvp::vptree

#endif  // MVPTREE_VPTREE_VP_TREE_H_

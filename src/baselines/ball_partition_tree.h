#ifndef MVPTREE_BASELINES_BALL_PARTITION_TREE_H_
#define MVPTREE_BASELINES_BALL_PARTITION_TREE_H_

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "common/query.h"
#include "common/rng.h"
#include "common/status.h"
#include "metric/metric.h"

/// \file
/// The second Burkhard-Keller method, as the paper summarizes it (§3.2):
/// "they partition the space into a number of sets of keys. For each set,
/// they arbitrarily pick a center key, and calculate the radius which is
/// the maximum distance between the center and any other key in the set.
/// The keys in a set are partitioned into other sets recursively creating a
/// multi-way tree. Each node in the tree keeps the centers and the radii
/// for the sets of keys indexed below. The strategy for partitioning the
/// keys into sets was not discussed and was left as a parameter."
///
/// This implementation uses closest-center assignment as that open
/// partitioning parameter (random centers, [BK73]'s "arbitrarily pick").
/// Search prunes a set whenever d(Q, center) - radius > r — the covering-
/// ball bound from the triangle inequality.

namespace mvp::baselines {

template <typename Object, metric::MetricFor<Object> Metric>
class BallPartitionTree {
 public:
  struct Options {
    /// Sets per node (the multi-way fanout).
    int fanout = 4;
    /// Sets of at most this size become leaf buckets.
    int leaf_capacity = 8;
    std::uint64_t seed = 0;
  };

  static Result<BallPartitionTree> Build(std::vector<Object> objects,
                                         Metric metric,
                                         const Options& options = Options{}) {
    if (options.fanout < 2) {
      return Status::InvalidArgument("ball-partition fanout must be >= 2");
    }
    if (options.leaf_capacity < 1) {
      return Status::InvalidArgument(
          "ball-partition leaf capacity must be >= 1");
    }
    BallPartitionTree tree(std::move(objects), std::move(metric), options);
    tree.BuildTree();
    return tree;
  }

  /// All objects within `radius` of `query`, sorted by distance then id.
  std::vector<Neighbor> RangeSearch(const Object& query, double radius,
                                    SearchStats* stats = nullptr) const {
    MVP_DCHECK(radius >= 0);
    std::vector<Neighbor> result;
    SearchStats local;
    if (root_ != nullptr) {
      RangeSearchNode(*root_, query, radius, result, local);
    }
    std::sort(result.begin(), result.end(), NeighborLess);
    if (stats != nullptr) {
      stats->distance_computations += local.distance_computations;
      stats->nodes_visited += local.nodes_visited;
      stats->leaf_points_seen += local.leaf_points_seen;
    }
    return result;
  }

  /// The k nearest objects: best-first over covering balls, pruning sets
  /// whose lower bound max(0, d(Q,c) - radius) exceeds the k-th best.
  std::vector<Neighbor> KnnSearch(const Object& query, std::size_t k,
                                  SearchStats* stats = nullptr) const {
    std::vector<Neighbor> heap;
    SearchStats local;
    if (root_ != nullptr && k > 0) {
      KnnSearchNode(*root_, query, k, heap, local);
    }
    std::sort_heap(heap.begin(), heap.end(), NeighborLess);
    if (stats != nullptr) {
      stats->distance_computations += local.distance_computations;
      stats->nodes_visited += local.nodes_visited;
      stats->leaf_points_seen += local.leaf_points_seen;
    }
    return heap;
  }

  std::size_t size() const { return objects_.size(); }
  const Object& object(std::size_t id) const {
    MVP_DCHECK(id < objects_.size());
    return objects_[id];
  }

  TreeStats Stats() const {
    TreeStats stats;
    stats.construction_distance_computations = construction_distances_;
    if (root_ != nullptr) CollectStats(*root_, 1, stats);
    return stats;
  }

 private:
  struct Node {
    bool is_leaf = false;
    std::vector<std::size_t> bucket;     // leaf payload
    std::vector<std::size_t> center_ids; // per set: its center key
    std::vector<double> radii;           // per set: covering radius
    std::vector<std::unique_ptr<Node>> children;
  };

  BallPartitionTree(std::vector<Object> objects, Metric metric,
                    const Options& options)
      : objects_(std::move(objects)),
        metric_(std::move(metric)),
        options_(options) {}

  double Distance(const Object& a, const Object& b) {
    ++construction_distances_;
    return metric_(a, b);
  }

  void BuildTree() {
    Rng rng(options_.seed);
    std::vector<std::size_t> ids(objects_.size());
    for (std::size_t i = 0; i < ids.size(); ++i) ids[i] = i;
    root_ = BuildNode(std::move(ids), rng, 0);
  }

  std::unique_ptr<Node> BuildNode(std::vector<std::size_t> ids, Rng& rng,
                                  int depth) {
    if (ids.empty()) return nullptr;
    auto node = std::make_unique<Node>();
    // Duplicate-heavy inputs can refuse to split (all keys equidistant from
    // every center); the depth guard caps that at a fat leaf.
    if (ids.size() <= static_cast<std::size_t>(options_.leaf_capacity) ||
        depth > 64) {
      node->is_leaf = true;
      node->bucket = std::move(ids);
      return node;
    }

    // Arbitrary (random, distinct) centers; each remaining key joins its
    // closest center's set; the radius covers the set.
    const std::size_t fanout = std::min<std::size_t>(
        static_cast<std::size_t>(options_.fanout), ids.size());
    rng.Shuffle(ids);
    std::vector<std::vector<std::size_t>> sets(fanout);
    node->center_ids.assign(ids.begin(),
                            ids.begin() + static_cast<std::ptrdiff_t>(fanout));
    node->radii.assign(fanout, 0.0);
    for (std::size_t i = fanout; i < ids.size(); ++i) {
      std::size_t closest = 0;
      double best = std::numeric_limits<double>::infinity();
      for (std::size_t c = 0; c < fanout; ++c) {
        const double d =
            Distance(objects_[node->center_ids[c]], objects_[ids[i]]);
        if (d < best) {
          best = d;
          closest = c;
        }
      }
      sets[closest].push_back(ids[i]);
      node->radii[closest] = std::max(node->radii[closest], best);
    }
    node->children.resize(fanout);
    for (std::size_t c = 0; c < fanout; ++c) {
      node->children[c] = BuildNode(std::move(sets[c]), rng, depth + 1);
    }
    return node;
  }

  void RangeSearchNode(const Node& node, const Object& query, double radius,
                       std::vector<Neighbor>& result,
                       SearchStats& stats) const {
    ++stats.nodes_visited;
    if (node.is_leaf) {
      stats.leaf_points_seen += node.bucket.size();
      for (const std::size_t id : node.bucket) {
        const double d = metric_(query, objects_[id]);
        ++stats.distance_computations;
        if (d <= radius) result.push_back(Neighbor{id, d});
      }
      return;
    }
    for (std::size_t c = 0; c < node.center_ids.size(); ++c) {
      const double d = metric_(query, objects_[node.center_ids[c]]);
      ++stats.distance_computations;
      if (d <= radius) result.push_back(Neighbor{node.center_ids[c], d});
      // Covering-ball bound: every key of set c is within radii[c] of the
      // center, so its distance to Q is at least d - radii[c].
      if (node.children[c] != nullptr && d - node.radii[c] <= radius) {
        RangeSearchNode(*node.children[c], query, radius, result, stats);
      }
    }
  }

  static double Tau(const std::vector<Neighbor>& heap, std::size_t k) {
    return heap.size() < k ? std::numeric_limits<double>::infinity()
                           : heap.front().distance;
  }

  static void Offer(std::vector<Neighbor>& heap, std::size_t k, Neighbor n) {
    if (heap.size() < k) {
      heap.push_back(n);
      std::push_heap(heap.begin(), heap.end(), NeighborLess);
    } else if (NeighborLess(n, heap.front())) {
      std::pop_heap(heap.begin(), heap.end(), NeighborLess);
      heap.back() = n;
      std::push_heap(heap.begin(), heap.end(), NeighborLess);
    }
  }

  void KnnSearchNode(const Node& node, const Object& query, std::size_t k,
                     std::vector<Neighbor>& heap, SearchStats& stats) const {
    ++stats.nodes_visited;
    if (node.is_leaf) {
      stats.leaf_points_seen += node.bucket.size();
      for (const std::size_t id : node.bucket) {
        const double d = metric_(query, objects_[id]);
        ++stats.distance_computations;
        Offer(heap, k, Neighbor{id, d});
      }
      return;
    }
    struct Ranked {
      double bound;
      std::size_t child;
    };
    std::vector<Ranked> ranked;
    for (std::size_t c = 0; c < node.center_ids.size(); ++c) {
      const double d = metric_(query, objects_[node.center_ids[c]]);
      ++stats.distance_computations;
      Offer(heap, k, Neighbor{node.center_ids[c], d});
      if (node.children[c] != nullptr) {
        ranked.push_back(Ranked{std::max(0.0, d - node.radii[c]), c});
      }
    }
    std::sort(ranked.begin(), ranked.end(),
              [](const Ranked& a, const Ranked& b) { return a.bound < b.bound; });
    for (const Ranked& r : ranked) {
      if (r.bound > Tau(heap, k)) break;
      KnnSearchNode(*node.children[r.child], query, k, heap, stats);
    }
  }

  void CollectStats(const Node& node, std::size_t depth,
                    TreeStats& stats) const {
    stats.height = std::max(stats.height, depth);
    if (node.is_leaf) {
      ++stats.num_leaf_nodes;
      stats.num_leaf_points += node.bucket.size();
      return;
    }
    ++stats.num_internal_nodes;
    stats.num_vantage_points += node.center_ids.size();
    for (const auto& child : node.children) {
      if (child != nullptr) CollectStats(*child, depth + 1, stats);
    }
  }

  std::vector<Object> objects_;
  Metric metric_;
  Options options_;
  std::unique_ptr<Node> root_;
  std::uint64_t construction_distances_ = 0;
};

}  // namespace mvp::baselines

#endif  // MVPTREE_BASELINES_BALL_PARTITION_TREE_H_

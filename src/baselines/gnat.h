#ifndef MVPTREE_BASELINES_GNAT_H_
#define MVPTREE_BASELINES_GNAT_H_

#include <algorithm>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "common/query.h"
#include "common/rng.h"
#include "common/status.h"
#include "metric/metric.h"

/// \file
/// GNAT — Geometric Near-neighbor Access Tree [Bri95], reviewed by the paper
/// in §3.2: "A k number of split points are chosen at the top level. Each
/// one of the remaining points are associated with one of the k datasets ...
/// depending on which split point they are closest to. For each split point,
/// the minimum and maximum distances from the points in the datasets of
/// other split points are recorded."
///
/// Search computes d(Q, split point) one split point at a time and discards
/// every sibling dataset whose recorded [min,max] range cannot intersect the
/// query ball (triangle inequality). Split points are chosen greedily
/// far-apart from a random sample (Brin's 3k-candidate heuristic).

namespace mvp::baselines {

template <typename Object, metric::MetricFor<Object> Metric>
class Gnat {
 public:
  struct Options {
    /// Split points per node (Brin parametrizes this per dataset size; a
    /// fixed default keeps the reproduction simple and is what the paper's
    /// summary describes).
    int split_points = 8;
    /// Datasets of at most this size become leaf buckets.
    int leaf_capacity = 16;
    /// Candidate-sampling factor for the far-apart heuristic (Brin uses 3).
    int candidate_factor = 3;
    std::uint64_t seed = 0;
  };

  static Result<Gnat> Build(std::vector<Object> objects, Metric metric,
                            const Options& options = Options{}) {
    if (options.split_points < 2) {
      return Status::InvalidArgument("GNAT needs >= 2 split points");
    }
    if (options.leaf_capacity < 1) {
      return Status::InvalidArgument("GNAT leaf capacity must be >= 1");
    }
    if (options.candidate_factor < 1) {
      return Status::InvalidArgument("GNAT candidate factor must be >= 1");
    }
    Gnat tree(std::move(objects), std::move(metric), options);
    tree.BuildTree();
    return tree;
  }

  std::vector<Neighbor> RangeSearch(const Object& query, double radius,
                                    SearchStats* stats = nullptr) const {
    MVP_DCHECK(radius >= 0);
    std::vector<Neighbor> result;
    SearchStats local;
    if (root_ != nullptr) {
      RangeSearchNode(*root_, query, radius, result, local);
    }
    std::sort(result.begin(), result.end(), NeighborLess);
    if (stats != nullptr) {
      stats->distance_computations += local.distance_computations;
      stats->nodes_visited += local.nodes_visited;
      stats->leaf_points_seen += local.leaf_points_seen;
    }
    return result;
  }

  /// The k nearest objects via shrinking-radius branch-and-bound over the
  /// same range-elimination rule as RangeSearch.
  std::vector<Neighbor> KnnSearch(const Object& query, std::size_t k,
                                  SearchStats* stats = nullptr) const {
    std::vector<Neighbor> heap;
    SearchStats local;
    if (root_ != nullptr && k > 0) {
      KnnSearchNode(*root_, query, k, heap, local);
    }
    std::sort_heap(heap.begin(), heap.end(), NeighborLess);
    if (stats != nullptr) {
      stats->distance_computations += local.distance_computations;
      stats->nodes_visited += local.nodes_visited;
      stats->leaf_points_seen += local.leaf_points_seen;
    }
    return heap;
  }

  std::size_t size() const { return objects_.size(); }
  const Object& object(std::size_t id) const {
    MVP_DCHECK(id < objects_.size());
    return objects_[id];
  }

  TreeStats Stats() const {
    TreeStats stats;
    stats.construction_distance_computations = construction_distances_;
    if (root_ != nullptr) CollectStats(*root_, 1, stats);
    return stats;
  }

 private:
  struct Range {
    double min = std::numeric_limits<double>::infinity();
    double max = -std::numeric_limits<double>::infinity();

    void Extend(double d) {
      min = std::min(min, d);
      max = std::max(max, d);
    }
    bool Intersects(double d, double r) const {
      return min <= max && d - r <= max && d + r >= min;
    }
  };

  struct Node {
    bool is_leaf = false;
    std::vector<std::size_t> bucket;  // leaf: plain point ids
    // Internal: k split points; ranges[i][j] = [min,max] of d(split_i, x)
    // over dataset j (including j == i's own dataset).
    std::vector<std::size_t> split_ids;
    std::vector<std::vector<Range>> ranges;
    std::vector<std::unique_ptr<Node>> children;
  };

  Gnat(std::vector<Object> objects, Metric metric, const Options& options)
      : objects_(std::move(objects)),
        metric_(std::move(metric)),
        options_(options) {}

  double Distance(const Object& a, const Object& b) {
    ++construction_distances_;
    return metric_(a, b);
  }

  void BuildTree() {
    Rng rng(options_.seed);
    std::vector<std::size_t> ids(objects_.size());
    for (std::size_t i = 0; i < ids.size(); ++i) ids[i] = i;
    root_ = BuildNode(std::move(ids), rng);
  }

  std::unique_ptr<Node> BuildNode(std::vector<std::size_t> ids, Rng& rng) {
    if (ids.empty()) return nullptr;
    auto node = std::make_unique<Node>();
    if (ids.size() <=
        static_cast<std::size_t>(options_.leaf_capacity)) {
      node->is_leaf = true;
      node->bucket = std::move(ids);
      return node;
    }

    // Far-apart split points: sample 3k candidates, greedily keep the one
    // maximizing the minimum distance to already-chosen split points.
    const std::size_t k = std::min<std::size_t>(
        static_cast<std::size_t>(options_.split_points), ids.size());
    const std::size_t num_candidates = std::min(
        ids.size(),
        k * static_cast<std::size_t>(options_.candidate_factor));
    std::vector<std::size_t> cand_offsets =
        rng.SampleIndices(ids.size(), num_candidates);

    std::vector<std::size_t> split_offsets;
    split_offsets.push_back(cand_offsets[0]);
    std::vector<double> best_dist(num_candidates,
                                  std::numeric_limits<double>::infinity());
    while (split_offsets.size() < k) {
      const std::size_t last = split_offsets.back();
      std::size_t arg_best = num_candidates;
      double best = -1.0;
      for (std::size_t c = 0; c < num_candidates; ++c) {
        const std::size_t off = cand_offsets[c];
        if (std::find(split_offsets.begin(), split_offsets.end(), off) !=
            split_offsets.end()) {
          continue;
        }
        best_dist[c] = std::min(
            best_dist[c], Distance(objects_[ids[off]], objects_[ids[last]]));
        if (best_dist[c] > best) {
          best = best_dist[c];
          arg_best = c;
        }
      }
      if (arg_best == num_candidates) break;  // ran out of candidates
      split_offsets.push_back(cand_offsets[arg_best]);
    }

    node->split_ids.reserve(split_offsets.size());
    for (const std::size_t off : split_offsets) {
      node->split_ids.push_back(ids[off]);
    }
    // Remove split points from the id set (mark + filter).
    std::sort(split_offsets.begin(), split_offsets.end());
    std::vector<std::size_t> remaining;
    remaining.reserve(ids.size() - split_offsets.size());
    std::size_t next_split = 0;
    for (std::size_t i = 0; i < ids.size(); ++i) {
      if (next_split < split_offsets.size() && i == split_offsets[next_split]) {
        ++next_split;
        continue;
      }
      remaining.push_back(ids[i]);
    }

    // Associate every remaining point with its closest split point and
    // record min/max ranges from every split point to every dataset. The
    // range for dataset t also covers split point t itself, so that range
    // elimination of subtree t soundly covers its split point (which would
    // otherwise never get its distance computed).
    const std::size_t num_splits = node->split_ids.size();
    std::vector<std::vector<std::size_t>> datasets(num_splits);
    node->ranges.assign(num_splits, std::vector<Range>(num_splits));
    for (std::size_t s = 0; s < num_splits; ++s) {
      for (std::size_t t = s + 1; t < num_splits; ++t) {
        const double d =
            Distance(objects_[node->split_ids[s]], objects_[node->split_ids[t]]);
        node->ranges[s][t].Extend(d);
        node->ranges[t][s].Extend(d);
      }
    }
    std::vector<double> dists(num_splits);
    for (const std::size_t id : remaining) {
      std::size_t closest = 0;
      for (std::size_t s = 0; s < num_splits; ++s) {
        dists[s] = Distance(objects_[node->split_ids[s]], objects_[id]);
        if (dists[s] < dists[closest]) closest = s;
      }
      datasets[closest].push_back(id);
      for (std::size_t s = 0; s < num_splits; ++s) {
        node->ranges[s][closest].Extend(dists[s]);
      }
    }

    node->children.resize(num_splits);
    for (std::size_t s = 0; s < num_splits; ++s) {
      node->children[s] = BuildNode(std::move(datasets[s]), rng);
    }
    return node;
  }

  void RangeSearchNode(const Node& node, const Object& query, double radius,
                       std::vector<Neighbor>& result,
                       SearchStats& stats) const {
    ++stats.nodes_visited;
    if (node.is_leaf) {
      stats.leaf_points_seen += node.bucket.size();
      for (const std::size_t id : node.bucket) {
        const double d = metric_(query, objects_[id]);
        ++stats.distance_computations;
        if (d <= radius) result.push_back(Neighbor{id, d});
      }
      return;
    }

    // Brin's search: process split points in turn; each computed distance
    // both reports the split point and eliminates sibling datasets.
    const std::size_t num_splits = node.split_ids.size();
    std::vector<bool> alive(num_splits, true);
    for (std::size_t s = 0; s < num_splits; ++s) {
      // An eliminated branch needs no distance computation at all: its
      // recorded range covers both its dataset and its split point.
      if (!alive[s]) continue;
      const double d = metric_(query, objects_[node.split_ids[s]]);
      ++stats.distance_computations;
      if (d <= radius) result.push_back(Neighbor{node.split_ids[s], d});
      for (std::size_t t = 0; t < num_splits; ++t) {
        if (t == s || !alive[t]) continue;
        // Branch t (its dataset and its split point) lies within [min,max]
        // of split point s; if the query ball cannot reach that band, the
        // whole branch is out (triangle inequality).
        if (!node.ranges[s][t].Intersects(d, radius)) alive[t] = false;
      }
    }
    for (std::size_t s = 0; s < num_splits; ++s) {
      if (!alive[s] || node.children[s] == nullptr) continue;
      RangeSearchNode(*node.children[s], query, radius, result, stats);
    }
  }

  static double Tau(const std::vector<Neighbor>& heap, std::size_t k) {
    return heap.size() < k ? std::numeric_limits<double>::infinity()
                           : heap.front().distance;
  }

  static void Offer(std::vector<Neighbor>& heap, std::size_t k, Neighbor n) {
    if (heap.size() < k) {
      heap.push_back(n);
      std::push_heap(heap.begin(), heap.end(), NeighborLess);
    } else if (NeighborLess(n, heap.front())) {
      std::pop_heap(heap.begin(), heap.end(), NeighborLess);
      heap.back() = n;
      std::push_heap(heap.begin(), heap.end(), NeighborLess);
    }
  }

  void KnnSearchNode(const Node& node, const Object& query, std::size_t k,
                     std::vector<Neighbor>& heap, SearchStats& stats) const {
    ++stats.nodes_visited;
    if (node.is_leaf) {
      stats.leaf_points_seen += node.bucket.size();
      for (const std::size_t id : node.bucket) {
        const double d = metric_(query, objects_[id]);
        ++stats.distance_computations;
        Offer(heap, k, Neighbor{id, d});
      }
      return;
    }
    // Compute all split-point distances with range elimination against the
    // current pruning radius, then descend the surviving branches in order
    // of their distance lower bound.
    const std::size_t num_splits = node.split_ids.size();
    std::vector<bool> alive(num_splits, true);
    std::vector<double> dist(num_splits, 0.0);
    std::vector<bool> computed(num_splits, false);
    for (std::size_t s = 0; s < num_splits; ++s) {
      if (!alive[s]) continue;
      dist[s] = metric_(query, objects_[node.split_ids[s]]);
      computed[s] = true;
      ++stats.distance_computations;
      Offer(heap, k, Neighbor{node.split_ids[s], dist[s]});
      const double tau = Tau(heap, k);
      for (std::size_t t = 0; t < num_splits; ++t) {
        if (t == s || !alive[t]) continue;
        if (!node.ranges[s][t].Intersects(dist[s], tau)) alive[t] = false;
      }
    }
    struct Ranked {
      double bound;
      std::size_t child;
    };
    std::vector<Ranked> ranked;
    for (std::size_t s = 0; s < num_splits; ++s) {
      if (!alive[s] || !computed[s] || node.children[s] == nullptr) continue;
      // Lower bound on distances within dataset s: the query ball around
      // the split point reaches its dataset shell [min,max].
      const double lo = std::max(
          {0.0, node.ranges[s][s].min - dist[s], dist[s] - node.ranges[s][s].max});
      ranked.push_back(Ranked{lo, s});
    }
    std::sort(ranked.begin(), ranked.end(),
              [](const Ranked& a, const Ranked& b) { return a.bound < b.bound; });
    for (const Ranked& r : ranked) {
      if (r.bound > Tau(heap, k)) break;
      KnnSearchNode(*node.children[r.child], query, k, heap, stats);
    }
  }

  void CollectStats(const Node& node, std::size_t depth,
                    TreeStats& stats) const {
    stats.height = std::max(stats.height, depth);
    if (node.is_leaf) {
      ++stats.num_leaf_nodes;
      stats.num_leaf_points += node.bucket.size();
      return;
    }
    ++stats.num_internal_nodes;
    stats.num_vantage_points += node.split_ids.size();
    for (const auto& child : node.children) {
      if (child != nullptr) CollectStats(*child, depth + 1, stats);
    }
  }

  std::vector<Object> objects_;
  Metric metric_;
  Options options_;
  std::unique_ptr<Node> root_;
  std::uint64_t construction_distances_ = 0;
};

}  // namespace mvp::baselines

#endif  // MVPTREE_BASELINES_GNAT_H_

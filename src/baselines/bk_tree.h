#ifndef MVPTREE_BASELINES_BK_TREE_H_
#define MVPTREE_BASELINES_BK_TREE_H_

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "common/query.h"
#include "common/status.h"
#include "metric/metric.h"

/// \file
/// The Burkhard-Keller tree [BK73] — the earliest structure the paper
/// reviews (§3.2, "their first method is a hierarchical multi-way tree
/// decomposition"): pick an element, group the remaining keys by their
/// (discrete, integer-valued) distance to it — "keys that are of the same
/// distance from that key get into the same group" — and recurse per group.
///
/// Unlike the other structures in this library, the BK-tree REQUIRES a
/// discrete metric (integer distances), e.g. edit or Hamming distance;
/// Build rejects datasets that produce non-integer distances.

namespace mvp::baselines {

template <typename Object, metric::MetricFor<Object> Metric>
class BkTree {
 public:
  /// Builds incrementally (the classic BK insertion, which also makes this
  /// the one naturally-dynamic structure of the era). Fails with
  /// InvalidArgument on the first non-integer distance encountered.
  static Result<BkTree> Build(std::vector<Object> objects, Metric metric) {
    BkTree tree(std::move(metric));
    for (auto& obj : objects) {
      MVP_RETURN_NOT_OK(tree.Insert(std::move(obj)));
    }
    return tree;
  }

  explicit BkTree(Metric metric) : metric_(std::move(metric)) {}

  /// Inserts one object. O(depth) distance computations.
  Status Insert(Object obj) {
    const std::size_t id = objects_.size();
    objects_.push_back(std::move(obj));
    if (root_ == nullptr) {
      root_ = std::make_unique<Node>(Node{id, {}});
      return Status::OK();
    }
    Node* node = root_.get();
    for (;;) {
      const double d = metric_(objects_[id], objects_[node->id]);
      ++construction_distances_;
      if (!IsDiscrete(d)) {
        objects_.pop_back();
        return Status::InvalidArgument(
            "BK-tree requires an integer-valued (discrete) metric");
      }
      const long key = std::lround(d);
      auto [it, inserted] = node->children.try_emplace(key, nullptr);
      if (inserted || it->second == nullptr) {
        it->second = std::make_unique<Node>(Node{id, {}});
        return Status::OK();
      }
      node = it->second.get();
    }
  }

  /// All objects within `radius` of `query`. The classic BK recursion:
  /// only child edges with |edge - d(Q,node)| <= radius can hold answers.
  std::vector<Neighbor> RangeSearch(const Object& query, double radius,
                                    SearchStats* stats = nullptr) const {
    MVP_DCHECK(radius >= 0);
    std::vector<Neighbor> result;
    SearchStats local;
    if (root_ != nullptr) {
      RangeSearchNode(*root_, query, radius, result, local);
    }
    std::sort(result.begin(), result.end(), NeighborLess);
    if (stats != nullptr) {
      stats->distance_computations += local.distance_computations;
      stats->nodes_visited += local.nodes_visited;
    }
    return result;
  }

  /// The k nearest objects ("finding best matching keys", the original
  /// [BK73] problem) via shrinking-radius DFS: children are visited in
  /// order of |edge - d(Q,node)| and pruned against the current k-th best.
  std::vector<Neighbor> KnnSearch(const Object& query, std::size_t k,
                                  SearchStats* stats = nullptr) const {
    std::vector<Neighbor> heap;
    SearchStats local;
    if (root_ != nullptr && k > 0) {
      KnnSearchNode(*root_, query, k, heap, local);
    }
    std::sort_heap(heap.begin(), heap.end(), NeighborLess);
    if (stats != nullptr) {
      stats->distance_computations += local.distance_computations;
      stats->nodes_visited += local.nodes_visited;
    }
    return heap;
  }

  std::size_t size() const { return objects_.size(); }
  const Object& object(std::size_t id) const {
    MVP_DCHECK(id < objects_.size());
    return objects_[id];
  }

  TreeStats Stats() const {
    TreeStats stats;
    stats.construction_distance_computations = construction_distances_;
    if (root_ != nullptr) CollectStats(*root_, 1, stats);
    return stats;
  }

 private:
  struct Node {
    std::size_t id;
    // Sparse discrete children keyed by integer distance; std::map keeps
    // range scans over [d-r, d+r] cheap.
    std::map<long, std::unique_ptr<Node>> children;
  };

  static bool IsDiscrete(double d) {
    return std::abs(d - static_cast<double>(std::lround(d))) < 1e-9;
  }

  void RangeSearchNode(const Node& node, const Object& query, double radius,
                       std::vector<Neighbor>& result,
                       SearchStats& stats) const {
    ++stats.nodes_visited;
    const double d = metric_(query, objects_[node.id]);
    ++stats.distance_computations;
    if (d <= radius) result.push_back(Neighbor{node.id, d});
    const long lo = std::lround(std::ceil(d - radius));
    const long hi = std::lround(std::floor(d + radius));
    for (auto it = node.children.lower_bound(lo);
         it != node.children.end() && it->first <= hi; ++it) {
      RangeSearchNode(*it->second, query, radius, result, stats);
    }
  }

  static double Tau(const std::vector<Neighbor>& heap, std::size_t k) {
    return heap.size() < k ? std::numeric_limits<double>::infinity()
                           : heap.front().distance;
  }

  static void Offer(std::vector<Neighbor>& heap, std::size_t k, Neighbor n) {
    if (heap.size() < k) {
      heap.push_back(n);
      std::push_heap(heap.begin(), heap.end(), NeighborLess);
    } else if (NeighborLess(n, heap.front())) {
      std::pop_heap(heap.begin(), heap.end(), NeighborLess);
      heap.back() = n;
      std::push_heap(heap.begin(), heap.end(), NeighborLess);
    }
  }

  void KnnSearchNode(const Node& node, const Object& query, std::size_t k,
                     std::vector<Neighbor>& heap, SearchStats& stats) const {
    ++stats.nodes_visited;
    const double d = metric_(query, objects_[node.id]);
    ++stats.distance_computations;
    Offer(heap, k, Neighbor{node.id, d});
    // Children by |edge - d| ascending so the pruning radius tightens fast.
    struct Ranked {
      double bound;
      const Node* child;
    };
    std::vector<Ranked> ranked;
    ranked.reserve(node.children.size());
    for (const auto& [edge, child] : node.children) {
      ranked.push_back(
          Ranked{std::abs(static_cast<double>(edge) - d), child.get()});
    }
    std::sort(ranked.begin(), ranked.end(),
              [](const Ranked& a, const Ranked& b) { return a.bound < b.bound; });
    for (const Ranked& r : ranked) {
      if (r.bound > Tau(heap, k)) break;
      KnnSearchNode(*r.child, query, k, heap, stats);
    }
  }

  void CollectStats(const Node& node, std::size_t depth,
                    TreeStats& stats) const {
    stats.height = std::max(stats.height, depth);
    stats.num_vantage_points += 1;  // every node's element is a pivot
    if (node.children.empty()) {
      ++stats.num_leaf_nodes;
    } else {
      ++stats.num_internal_nodes;
    }
    for (const auto& [key, child] : node.children) {
      CollectStats(*child, depth + 1, stats);
    }
  }

  Metric metric_;
  std::vector<Object> objects_;
  std::unique_ptr<Node> root_;
  std::uint64_t construction_distances_ = 0;
};

}  // namespace mvp::baselines

#endif  // MVPTREE_BASELINES_BK_TREE_H_

#ifndef MVPTREE_BASELINES_CLIQUE_TREE_H_
#define MVPTREE_BASELINES_CLIQUE_TREE_H_

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "common/query.h"
#include "common/rng.h"
#include "common/status.h"
#include "metric/metric.h"

/// \file
/// The third Burkhard-Keller method, per the paper's §3.2 summary: "similar
/// to the second one, but there is the requirement that the diameter (the
/// maximum distance between any two points in a group) of any group should
/// be less than a given constant k, where the value of k is different at
/// each level. The group satisfying this criterion is called a clique.
/// This method relies on finding the set of maximal cliques at each level,
/// and keeping their representatives in the nodes to trim the search."
///
/// Exact maximal-clique enumeration is exponential; [BK73] itself used
/// heuristics. This implementation uses the standard greedy cover: seed a
/// clique with an unassigned key, grow it with keys whose distance to every
/// current member stays below the level's diameter, repeat. Each clique
/// keeps a representative (its seed); the diameter bound gives the pruning
/// rule  d(Q, rep) - diameter > r  =>  no member can be an answer. Levels
/// shrink the diameter geometrically until cliques are singletons/buckets.

namespace mvp::baselines {

template <typename Object, metric::MetricFor<Object> Metric>
class CliqueTree {
 public:
  struct Options {
    /// Diameter of top-level cliques, as a fraction of an estimated dataset
    /// diameter (sampled at build time).
    double initial_diameter_fraction = 0.5;
    /// Diameter shrink factor per level.
    double shrink = 0.5;
    /// Cliques of at most this many members become leaf buckets.
    int leaf_capacity = 8;
    /// Hard cap on levels (guards degenerate metrics).
    int max_depth = 24;
    std::uint64_t seed = 0;
  };

  static Result<CliqueTree> Build(std::vector<Object> objects, Metric metric,
                                  const Options& options = Options{}) {
    if (options.initial_diameter_fraction <= 0 || options.shrink <= 0 ||
        options.shrink >= 1) {
      return Status::InvalidArgument(
          "clique-tree needs positive diameter fraction and shrink in (0,1)");
    }
    if (options.leaf_capacity < 1) {
      return Status::InvalidArgument("clique-tree leaf capacity must be >= 1");
    }
    CliqueTree tree(std::move(objects), std::move(metric), options);
    tree.BuildTree();
    return tree;
  }

  std::vector<Neighbor> RangeSearch(const Object& query, double radius,
                                    SearchStats* stats = nullptr) const {
    MVP_DCHECK(radius >= 0);
    std::vector<Neighbor> result;
    SearchStats local;
    if (root_ != nullptr) {
      RangeSearchNode(*root_, query, radius, result, local);
    }
    std::sort(result.begin(), result.end(), NeighborLess);
    if (stats != nullptr) {
      stats->distance_computations += local.distance_computations;
      stats->nodes_visited += local.nodes_visited;
      stats->leaf_points_seen += local.leaf_points_seen;
    }
    return result;
  }

  std::size_t size() const { return objects_.size(); }
  const Object& object(std::size_t id) const {
    MVP_DCHECK(id < objects_.size());
    return objects_[id];
  }

  TreeStats Stats() const {
    TreeStats stats;
    stats.construction_distance_computations = construction_distances_;
    if (root_ != nullptr) CollectStats(*root_, 1, stats);
    return stats;
  }

 private:
  struct Node {
    bool is_leaf = false;
    std::vector<std::size_t> bucket;   // leaf: member ids
    // Internal: one entry per clique found at this level.
    std::vector<std::size_t> rep_ids;  // representatives
    double diameter = 0.0;             // the level's diameter bound
    std::vector<std::unique_ptr<Node>> children;
  };

  CliqueTree(std::vector<Object> objects, Metric metric,
             const Options& options)
      : objects_(std::move(objects)),
        metric_(std::move(metric)),
        options_(options) {}

  double Distance(const Object& a, const Object& b) {
    ++construction_distances_;
    return metric_(a, b);
  }

  void BuildTree() {
    if (objects_.empty()) return;
    // Estimate the dataset diameter from a sample of pairs.
    Rng rng(options_.seed);
    double estimate = 0.0;
    const std::size_t probes = std::min<std::size_t>(64, objects_.size());
    for (std::size_t i = 0; i < probes; ++i) {
      const auto a = rng.NextIndex(objects_.size());
      const auto b = rng.NextIndex(objects_.size());
      estimate = std::max(estimate, Distance(objects_[a], objects_[b]));
    }
    std::vector<std::size_t> ids(objects_.size());
    for (std::size_t i = 0; i < ids.size(); ++i) ids[i] = i;
    root_ = BuildNode(std::move(ids),
                      std::max(estimate, 1e-12) *
                          options_.initial_diameter_fraction,
                      rng, 0);
  }

  std::unique_ptr<Node> BuildNode(std::vector<std::size_t> ids,
                                  double diameter, Rng& rng, int depth) {
    if (ids.empty()) return nullptr;
    auto node = std::make_unique<Node>();
    if (ids.size() <= static_cast<std::size_t>(options_.leaf_capacity) ||
        depth >= options_.max_depth) {
      node->is_leaf = true;
      node->bucket = std::move(ids);
      return node;
    }

    node->diameter = diameter;
    // Greedy clique cover: the seed of each clique is its representative.
    rng.Shuffle(ids);
    std::vector<bool> assigned(ids.size(), false);
    std::vector<std::vector<std::size_t>> cliques;
    for (std::size_t s = 0; s < ids.size(); ++s) {
      if (assigned[s]) continue;
      assigned[s] = true;
      std::vector<std::size_t> members{ids[s]};
      for (std::size_t i = s + 1; i < ids.size(); ++i) {
        if (assigned[i]) continue;
        bool fits = true;
        for (const std::size_t member : members) {
          if (Distance(objects_[member], objects_[ids[i]]) > diameter) {
            fits = false;
            break;
          }
        }
        if (fits) {
          members.push_back(ids[i]);
          assigned[i] = true;
        }
      }
      node->rep_ids.push_back(members.front());
      cliques.push_back(std::move(members));
    }
    if (cliques.size() == 1) {
      // The diameter failed to split anything; recurse with a smaller one
      // on the same id set (without materializing a useless level).
      return BuildNode(std::move(cliques.front()), diameter * options_.shrink,
                       rng, depth + 1);
    }
    node->children.resize(cliques.size());
    for (std::size_t c = 0; c < cliques.size(); ++c) {
      node->children[c] = BuildNode(std::move(cliques[c]),
                                    diameter * options_.shrink, rng, depth + 1);
    }
    return node;
  }

  void RangeSearchNode(const Node& node, const Object& query, double radius,
                       std::vector<Neighbor>& result,
                       SearchStats& stats) const {
    ++stats.nodes_visited;
    if (node.is_leaf) {
      stats.leaf_points_seen += node.bucket.size();
      for (const std::size_t id : node.bucket) {
        const double d = metric_(query, objects_[id]);
        ++stats.distance_computations;
        if (d <= radius) result.push_back(Neighbor{id, d});
      }
      return;
    }
    for (std::size_t c = 0; c < node.rep_ids.size(); ++c) {
      const double d = metric_(query, objects_[node.rep_ids[c]]);
      ++stats.distance_computations;
      // The representative is a member of its clique and is re-examined in
      // the child; to avoid double-reporting, only the child reports it.
      // Prune the whole clique when even the closest possible member (the
      // diameter bound from the representative) is out of reach.
      if (node.children[c] != nullptr && d - node.diameter <= radius) {
        RangeSearchNode(*node.children[c], query, radius, result, stats);
      }
    }
  }

  void CollectStats(const Node& node, std::size_t depth,
                    TreeStats& stats) const {
    stats.height = std::max(stats.height, depth);
    if (node.is_leaf) {
      ++stats.num_leaf_nodes;
      stats.num_leaf_points += node.bucket.size();
      return;
    }
    ++stats.num_internal_nodes;
    // Representatives stay members of their cliques (they are re-examined
    // in the children), so they are not "consumed" vantage points; every
    // point is accounted for exactly once via the leaf buckets.
    for (const auto& child : node.children) {
      if (child != nullptr) CollectStats(*child, depth + 1, stats);
    }
  }

  std::vector<Object> objects_;
  Metric metric_;
  Options options_;
  std::unique_ptr<Node> root_;
  std::uint64_t construction_distances_ = 0;
};

}  // namespace mvp::baselines

#endif  // MVPTREE_BASELINES_CLIQUE_TREE_H_

#ifndef MVPTREE_BASELINES_DISTANCE_MATRIX_H_
#define MVPTREE_BASELINES_DISTANCE_MATRIX_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "common/query.h"
#include "common/status.h"
#include "metric/metric.h"

/// \file
/// The pre-computed distance-table approach of [SW90] (Shasha & Wang),
/// reviewed by the paper in §3.2: "a table of size O(n^2) keeps the
/// distances between data objects ... pre-computed distances [are] used to
/// efficiently answer similarity search queries. The aim is to minimize the
/// number of distance computations as much as possible ... Search
/// algorithms of O(n) or even O(n log n) ... are acceptable if they
/// minimize the number [of] distance computations."
///
/// This implementation follows the AESA refinement of the idea: at query
/// time, repeatedly (1) pick the undecided object with the smallest current
/// lower bound, (2) compute its real distance, (3) use the stored row of
/// pairwise distances to tighten every other object's lower/upper interval
/// via the triangle inequality, deciding objects whose interval falls
/// entirely inside or outside the query ball without computing anything.
///
/// The paper's caveat is architectural and shows up immediately at scale:
/// "the space requirements and the search complexity become overwhelming
/// for larger domains" — O(n^2) doubles of storage and O(n) bookkeeping per
/// distance computation. Build rejects n above an explicit limit.

namespace mvp::baselines {

template <typename Object, metric::MetricFor<Object> Metric>
class DistanceMatrixIndex {
 public:
  struct Options {
    /// Hard cap on the indexed cardinality (the O(n^2) table is the whole
    /// point and the whole problem).
    std::size_t max_objects = 20000;
  };

  /// Builds the full pairwise table: exactly n*(n-1)/2 distance
  /// computations.
  static Result<DistanceMatrixIndex> Build(std::vector<Object> objects,
                                           Metric metric,
                                           const Options& options = Options{}) {
    if (objects.size() > options.max_objects) {
      return Status::InvalidArgument(
          "dataset exceeds the distance-matrix cardinality cap (the O(n^2) "
          "table is only viable for small domains, as the paper notes)");
    }
    DistanceMatrixIndex index(std::move(objects), std::move(metric));
    index.BuildTable();
    return index;
  }

  /// All objects within `radius` of `query`. Exact; typically needs far
  /// fewer distance computations than any tree (every computed distance
  /// updates ALL undecided objects' bounds).
  std::vector<Neighbor> RangeSearch(const Object& query, double radius,
                                    SearchStats* stats = nullptr) const {
    MVP_DCHECK(radius >= 0);
    const std::size_t n = objects_.size();
    std::vector<Neighbor> result;
    if (n == 0) return result;

    constexpr double kInf = std::numeric_limits<double>::infinity();
    std::vector<double> lower(n, 0.0), upper(n, kInf);
    std::vector<bool> decided(n, false);
    std::size_t remaining = n;
    std::uint64_t computed = 0;

    while (remaining > 0) {
      // Next pivot: undecided object with the smallest lower bound (the
      // AESA selection rule — most likely to be an answer and to tighten
      // its neighborhood).
      std::size_t pivot = n;
      double best = kInf;
      for (std::size_t i = 0; i < n; ++i) {
        if (!decided[i] && lower[i] < best) {
          best = lower[i];
          pivot = i;
        }
      }
      MVP_DCHECK(pivot < n);
      const double d = metric_(query, objects_[pivot]);
      ++computed;
      decided[pivot] = true;
      --remaining;
      if (d <= radius) result.push_back(Neighbor{pivot, d});

      for (std::size_t i = 0; i < n; ++i) {
        if (decided[i]) continue;
        const double pair = TableAt(pivot, i);
        lower[i] = std::max(lower[i], std::abs(d - pair));
        upper[i] = std::min(upper[i], d + pair);
        if (upper[i] <= radius) {
          // Provably an answer — but its exact distance must be reported,
          // and this library reports true distances, so compute it now
          // (re-checking the ball test to stay exact under floating-point
          // rounding of the upper bound).
          const double exact = metric_(query, objects_[i]);
          ++computed;
          decided[i] = true;
          --remaining;
          if (exact <= radius) result.push_back(Neighbor{i, exact});
        } else if (lower[i] > radius) {
          decided[i] = true;  // provably out, no computation ever
          --remaining;
        }
      }
    }
    std::sort(result.begin(), result.end(), NeighborLess);
    if (stats != nullptr) stats->distance_computations += computed;
    return result;
  }

  /// The k nearest objects, AESA-style: shrinking radius = current k-th
  /// best upper bound.
  std::vector<Neighbor> KnnSearch(const Object& query, std::size_t k,
                                  SearchStats* stats = nullptr) const {
    const std::size_t n = objects_.size();
    std::vector<Neighbor> heap;
    if (n == 0 || k == 0) return heap;

    constexpr double kInf = std::numeric_limits<double>::infinity();
    std::vector<double> lower(n, 0.0);
    std::vector<bool> decided(n, false);
    std::size_t remaining = n;
    std::uint64_t computed = 0;

    auto tau = [&]() {
      return heap.size() < k ? kInf : heap.front().distance;
    };
    while (remaining > 0) {
      std::size_t pivot = n;
      double best = kInf;
      for (std::size_t i = 0; i < n; ++i) {
        if (!decided[i] && lower[i] < best) {
          best = lower[i];
          pivot = i;
        }
      }
      if (pivot == n || best > tau()) break;  // nothing can improve
      const double d = metric_(query, objects_[pivot]);
      ++computed;
      decided[pivot] = true;
      --remaining;
      Offer(heap, k, Neighbor{pivot, d});
      for (std::size_t i = 0; i < n; ++i) {
        if (decided[i]) continue;
        lower[i] = std::max(lower[i], std::abs(d - TableAt(pivot, i)));
        if (lower[i] > tau()) {
          decided[i] = true;
          --remaining;
        }
      }
    }
    std::sort_heap(heap.begin(), heap.end(), NeighborLess);
    if (stats != nullptr) stats->distance_computations += computed;
    return heap;
  }

  std::size_t size() const { return objects_.size(); }
  const Object& object(std::size_t id) const {
    MVP_DCHECK(id < objects_.size());
    return objects_[id];
  }

  /// O(n^2) table entries; constructions costs exactly n*(n-1)/2 distances.
  TreeStats Stats() const {
    TreeStats stats;
    stats.construction_distance_computations = construction_distances_;
    return stats;
  }

 private:
  DistanceMatrixIndex(std::vector<Object> objects, Metric metric)
      : objects_(std::move(objects)), metric_(std::move(metric)) {}

  void BuildTable() {
    const std::size_t n = objects_.size();
    table_.assign(n * n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        const double d = metric_(objects_[i], objects_[j]);
        ++construction_distances_;
        table_[i * n + j] = d;
        table_[j * n + i] = d;
      }
    }
  }

  double TableAt(std::size_t i, std::size_t j) const {
    return table_[i * objects_.size() + j];
  }

  static void Offer(std::vector<Neighbor>& heap, std::size_t k, Neighbor n) {
    if (heap.size() < k) {
      heap.push_back(n);
      std::push_heap(heap.begin(), heap.end(), NeighborLess);
    } else if (NeighborLess(n, heap.front())) {
      std::pop_heap(heap.begin(), heap.end(), NeighborLess);
      heap.back() = n;
      std::push_heap(heap.begin(), heap.end(), NeighborLess);
    }
  }

  std::vector<Object> objects_;
  Metric metric_;
  std::vector<double> table_;
  std::uint64_t construction_distances_ = 0;
};

}  // namespace mvp::baselines

#endif  // MVPTREE_BASELINES_DISTANCE_MATRIX_H_

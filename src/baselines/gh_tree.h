#ifndef MVPTREE_BASELINES_GH_TREE_H_
#define MVPTREE_BASELINES_GH_TREE_H_

#include <algorithm>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "common/query.h"
#include "common/rng.h"
#include "common/status.h"
#include "metric/metric.h"

/// \file
/// The generalized hyperplane tree [Uhl91], reviewed by the paper in §3.2:
/// "At the top node, two points are picked and the remaining points are
/// divided into two groups depending on which of these two points they are
/// closer to. The two branches ... are built recursively in the same way.
/// Unlike the vp-trees, the branching factor can only be two."
///
/// Pruning uses the hyperplane margin: if d(Q,p1) - d(Q,p2) > 2r, no point
/// closer to p1 than to p2 can be within r of Q (and symmetrically), a
/// direct consequence of the triangle inequality.

namespace mvp::baselines {

template <typename Object, metric::MetricFor<Object> Metric>
class GhTree {
 public:
  struct Options {
    /// Buckets of at most this size stop the recursion.
    int leaf_capacity = 4;
    /// Pivot choice: pick the first pivot randomly, the second as the point
    /// farthest from the first within a sample ("if the two pivot points
    /// are well-selected ... the gh-tree tends to be a well-balanced
    /// structure") — or fully random when false.
    bool far_apart_pivots = true;
    std::uint64_t seed = 0;
  };

  static Result<GhTree> Build(std::vector<Object> objects, Metric metric,
                              const Options& options = Options{}) {
    if (options.leaf_capacity < 1) {
      return Status::InvalidArgument("gh-tree leaf capacity must be >= 1");
    }
    GhTree tree(std::move(objects), std::move(metric), options);
    tree.BuildTree();
    return tree;
  }

  std::vector<Neighbor> RangeSearch(const Object& query, double radius,
                                    SearchStats* stats = nullptr) const {
    MVP_DCHECK(radius >= 0);
    std::vector<Neighbor> result;
    SearchStats local;
    if (root_ != nullptr) {
      RangeSearchNode(*root_, query, radius, result, local);
    }
    std::sort(result.begin(), result.end(), NeighborLess);
    if (stats != nullptr) {
      stats->distance_computations += local.distance_computations;
      stats->nodes_visited += local.nodes_visited;
      stats->leaf_points_seen += local.leaf_points_seen;
    }
    return result;
  }

  /// The k nearest objects via shrinking-radius branch-and-bound: the
  /// hyperplane margin (d1 - d2)/2 lower-bounds the distance to the far
  /// side, and the closer side is searched first.
  std::vector<Neighbor> KnnSearch(const Object& query, std::size_t k,
                                  SearchStats* stats = nullptr) const {
    std::vector<Neighbor> heap;
    SearchStats local;
    if (root_ != nullptr && k > 0) {
      KnnSearchNode(*root_, query, k, heap, local);
    }
    std::sort_heap(heap.begin(), heap.end(), NeighborLess);
    if (stats != nullptr) {
      stats->distance_computations += local.distance_computations;
      stats->nodes_visited += local.nodes_visited;
      stats->leaf_points_seen += local.leaf_points_seen;
    }
    return heap;
  }

  std::size_t size() const { return objects_.size(); }
  const Object& object(std::size_t id) const {
    MVP_DCHECK(id < objects_.size());
    return objects_[id];
  }

  TreeStats Stats() const {
    TreeStats stats;
    stats.construction_distance_computations = construction_distances_;
    if (root_ != nullptr) CollectStats(*root_, 1, stats);
    return stats;
  }

 private:
  struct Node {
    bool is_leaf = false;
    std::vector<std::size_t> bucket;  // leaf payload
    std::size_t pivot1 = 0;
    std::size_t pivot2 = 0;
    std::unique_ptr<Node> left;   // points closer to pivot1
    std::unique_ptr<Node> right;  // points closer to pivot2
  };

  GhTree(std::vector<Object> objects, Metric metric, const Options& options)
      : objects_(std::move(objects)),
        metric_(std::move(metric)),
        options_(options) {}

  double Distance(const Object& a, const Object& b) {
    ++construction_distances_;
    return metric_(a, b);
  }

  void BuildTree() {
    Rng rng(options_.seed);
    std::vector<std::size_t> ids(objects_.size());
    for (std::size_t i = 0; i < ids.size(); ++i) ids[i] = i;
    root_ = BuildNode(std::move(ids), rng, 0);
  }

  std::unique_ptr<Node> BuildNode(std::vector<std::size_t> ids, Rng& rng,
                                  int depth) {
    if (ids.empty()) return nullptr;
    auto node = std::make_unique<Node>();
    // Degenerate splits (all points equidistant / duplicates) could recurse
    // forever; the depth guard turns pathological inputs into fat leaves.
    if (ids.size() <= static_cast<std::size_t>(options_.leaf_capacity) + 2 ||
        depth > 64) {
      node->is_leaf = true;
      node->bucket = std::move(ids);
      return node;
    }

    const std::size_t p1_off = rng.NextIndex(ids.size());
    std::swap(ids[0], ids[p1_off]);
    std::size_t p2_off = 1 + rng.NextIndex(ids.size() - 1);
    if (options_.far_apart_pivots) {
      // Farthest-from-p1 among a bounded sample.
      const std::size_t sample =
          std::min<std::size_t>(ids.size() - 1, 16);
      double best = -1.0;
      for (std::size_t s = 0; s < sample; ++s) {
        const std::size_t off = 1 + rng.NextIndex(ids.size() - 1);
        const double d = Distance(objects_[ids[0]], objects_[ids[off]]);
        if (d > best) {
          best = d;
          p2_off = off;
        }
      }
    }
    std::swap(ids[1], ids[p2_off]);
    node->pivot1 = ids[0];
    node->pivot2 = ids[1];

    std::vector<std::size_t> left_ids, right_ids;
    for (std::size_t i = 2; i < ids.size(); ++i) {
      const double d1 = Distance(objects_[node->pivot1], objects_[ids[i]]);
      const double d2 = Distance(objects_[node->pivot2], objects_[ids[i]]);
      (d1 <= d2 ? left_ids : right_ids).push_back(ids[i]);
    }
    node->left = BuildNode(std::move(left_ids), rng, depth + 1);
    node->right = BuildNode(std::move(right_ids), rng, depth + 1);
    return node;
  }

  void RangeSearchNode(const Node& node, const Object& query, double radius,
                       std::vector<Neighbor>& result,
                       SearchStats& stats) const {
    ++stats.nodes_visited;
    if (node.is_leaf) {
      stats.leaf_points_seen += node.bucket.size();
      for (const std::size_t id : node.bucket) {
        const double d = metric_(query, objects_[id]);
        ++stats.distance_computations;
        if (d <= radius) result.push_back(Neighbor{id, d});
      }
      return;
    }
    const double d1 = metric_(query, objects_[node.pivot1]);
    const double d2 = metric_(query, objects_[node.pivot2]);
    stats.distance_computations += 2;
    if (d1 <= radius) result.push_back(Neighbor{node.pivot1, d1});
    if (d2 <= radius) result.push_back(Neighbor{node.pivot2, d2});
    // Hyperplane pruning: the left subtree holds points x with
    // d(x,p1) <= d(x,p2); for such x, d(Q,x) >= (d(Q,p1) - d(Q,p2)) / 2,
    // so the subtree is empty of answers when d1 - d2 > 2r.
    if (node.left != nullptr && d1 - d2 <= 2 * radius) {
      RangeSearchNode(*node.left, query, radius, result, stats);
    }
    if (node.right != nullptr && d2 - d1 <= 2 * radius) {
      RangeSearchNode(*node.right, query, radius, result, stats);
    }
  }

  static double Tau(const std::vector<Neighbor>& heap, std::size_t k) {
    return heap.size() < k ? std::numeric_limits<double>::infinity()
                           : heap.front().distance;
  }

  static void Offer(std::vector<Neighbor>& heap, std::size_t k, Neighbor n) {
    if (heap.size() < k) {
      heap.push_back(n);
      std::push_heap(heap.begin(), heap.end(), NeighborLess);
    } else if (NeighborLess(n, heap.front())) {
      std::pop_heap(heap.begin(), heap.end(), NeighborLess);
      heap.back() = n;
      std::push_heap(heap.begin(), heap.end(), NeighborLess);
    }
  }

  void KnnSearchNode(const Node& node, const Object& query, std::size_t k,
                     std::vector<Neighbor>& heap, SearchStats& stats) const {
    ++stats.nodes_visited;
    if (node.is_leaf) {
      stats.leaf_points_seen += node.bucket.size();
      for (const std::size_t id : node.bucket) {
        const double d = metric_(query, objects_[id]);
        ++stats.distance_computations;
        Offer(heap, k, Neighbor{id, d});
      }
      return;
    }
    const double d1 = metric_(query, objects_[node.pivot1]);
    const double d2 = metric_(query, objects_[node.pivot2]);
    stats.distance_computations += 2;
    Offer(heap, k, Neighbor{node.pivot1, d1});
    Offer(heap, k, Neighbor{node.pivot2, d2});
    // Closer half first; the far half only if the hyperplane margin still
    // allows an answer within the current pruning radius.
    const Node* first = node.left.get();
    const Node* second = node.right.get();
    double margin = (d2 - d1) / 2;  // lower bound on d(Q, right side)
    if (d2 < d1) {
      std::swap(first, second);
      margin = (d1 - d2) / 2;
    }
    if (first != nullptr) KnnSearchNode(*first, query, k, heap, stats);
    if (second != nullptr && margin <= Tau(heap, k)) {
      KnnSearchNode(*second, query, k, heap, stats);
    }
  }

  void CollectStats(const Node& node, std::size_t depth,
                    TreeStats& stats) const {
    stats.height = std::max(stats.height, depth);
    if (node.is_leaf) {
      ++stats.num_leaf_nodes;
      stats.num_leaf_points += node.bucket.size();
      return;
    }
    ++stats.num_internal_nodes;
    stats.num_vantage_points += 2;
    if (node.left != nullptr) CollectStats(*node.left, depth + 1, stats);
    if (node.right != nullptr) CollectStats(*node.right, depth + 1, stats);
  }

  std::vector<Object> objects_;
  Metric metric_;
  Options options_;
  std::unique_ptr<Node> root_;
  std::uint64_t construction_distances_ = 0;
};

}  // namespace mvp::baselines

#endif  // MVPTREE_BASELINES_GH_TREE_H_

#include "harness/table.h"

#include <algorithm>
#include <cstdio>

#include "common/macros.h"

namespace mvp::harness {

std::string FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

void Table::AddRow(std::vector<std::string> cells) {
  MVP_DCHECK(cells.size() == columns_.size());
  rows_.push_back(std::move(cells));
}

void Table::AddRow(const std::string& label, const std::vector<double>& values,
                   int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (const double v : values) cells.push_back(FormatDouble(v, precision));
  AddRow(std::move(cells));
}

std::string Table::ToText() const {
  std::vector<std::size_t> widths(columns_.size(), 0);
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& cells) {
    std::string line = "  ";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      const std::size_t pad = widths[c] - cells[c].size();
      // Right-align numeric-looking cells for readability.
      line += std::string(pad, ' ') + cells[c];
      if (c + 1 < cells.size()) line += "  ";
    }
    return line + "\n";
  };
  std::string out = render_row(columns_);
  std::string rule = "  ";
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    rule += std::string(widths[c], '-');
    if (c + 1 < columns_.size()) rule += "  ";
  }
  out += rule + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string Table::ToCsv() const {
  std::string out;
  auto append_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out += cells[c];
      if (c + 1 < cells.size()) out += ",";
    }
    out += "\n";
  };
  append_row(columns_);
  for (const auto& row : rows_) append_row(row);
  return out;
}

void PrintFigureHeader(std::ostream& os, const std::string& figure_id,
                       const std::string& caption,
                       const std::string& workload) {
  os << "==========================================================\n"
     << figure_id << ": " << caption << "\n"
     << "workload: " << workload << "\n"
     << "==========================================================\n";
}

}  // namespace mvp::harness

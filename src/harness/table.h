#ifndef MVPTREE_HARNESS_TABLE_H_
#define MVPTREE_HARNESS_TABLE_H_

#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

/// \file
/// Aligned text tables for the benchmark binaries: each paper figure is
/// regenerated as one table whose rows/series mirror the figure's plot.

namespace mvp::harness {

/// Formats `value` with `precision` fractional digits (fixed notation).
std::string FormatDouble(double value, int precision = 1);

/// A column-aligned experiment table, printable as text or CSV.
class Table {
 public:
  explicit Table(std::vector<std::string> columns)
      : columns_(std::move(columns)) {}

  /// Adds a pre-formatted row; must match the column count.
  void AddRow(std::vector<std::string> cells);

  /// Convenience: first cell a label, remaining cells numeric.
  void AddRow(const std::string& label, const std::vector<double>& values,
              int precision = 1);

  /// Column-aligned, pipe-separated rendering.
  std::string ToText() const;

  /// RFC-4180-ish CSV (no quoting needed for this project's cell content).
  std::string ToCsv() const;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a figure banner: id, caption, and workload description.
void PrintFigureHeader(std::ostream& os, const std::string& figure_id,
                       const std::string& caption,
                       const std::string& workload);

}  // namespace mvp::harness

#endif  // MVPTREE_HARNESS_TABLE_H_

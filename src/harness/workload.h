#ifndef MVPTREE_HARNESS_WORKLOAD_H_
#define MVPTREE_HARNESS_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "common/macros.h"
#include "common/query.h"

/// \file
/// The paper's measurement protocol (§5.2): "All the results are obtained by
/// taking the average of 4 different runs for each structure where a
/// different seed (for the random function used to pick vantage points) is
/// used in each run. The result of each run is obtained by averaging the
/// results of 100 search queries". The helpers here implement exactly that:
/// build an index per seed, run every query at every radius, average the
/// per-query distance-computation counts.

namespace mvp::harness {

/// Averaged outcome of one (structure, radius) cell.
struct SweepCell {
  double avg_distance_computations = 0.0;
  double avg_result_size = 0.0;
  double avg_construction_distances = 0.0;  ///< per run
};

/// Runs the §5.2 protocol. `build(seed)` must return an index exposing
/// `RangeSearch(query, radius, SearchStats*)` and `Stats()`. Returns one
/// cell per radius, averaged over runs x queries.
template <typename BuildFn, typename Object>
std::vector<SweepCell> RangeCostSweep(BuildFn&& build,
                                      const std::vector<Object>& queries,
                                      const std::vector<double>& radii,
                                      std::size_t runs) {
  MVP_DCHECK(runs > 0);
  MVP_DCHECK(!queries.empty());
  std::vector<SweepCell> cells(radii.size());
  for (std::size_t run = 0; run < runs; ++run) {
    const auto index = build(static_cast<std::uint64_t>(run));
    const double construction = static_cast<double>(
        index.Stats().construction_distance_computations);
    for (std::size_t r = 0; r < radii.size(); ++r) {
      cells[r].avg_construction_distances += construction;
      for (const Object& q : queries) {
        SearchStats stats;
        const auto result = index.RangeSearch(q, radii[r], &stats);
        cells[r].avg_distance_computations +=
            static_cast<double>(stats.distance_computations);
        cells[r].avg_result_size += static_cast<double>(result.size());
      }
    }
  }
  const double per_query = static_cast<double>(runs * queries.size());
  for (auto& cell : cells) {
    cell.avg_distance_computations /= per_query;
    cell.avg_result_size /= per_query;
    cell.avg_construction_distances /= static_cast<double>(runs);
  }
  return cells;
}

/// k-NN variant of the sweep: one cell per k in `ks`.
template <typename BuildFn, typename Object>
std::vector<SweepCell> KnnCostSweep(BuildFn&& build,
                                    const std::vector<Object>& queries,
                                    const std::vector<std::size_t>& ks,
                                    std::size_t runs) {
  MVP_DCHECK(runs > 0);
  MVP_DCHECK(!queries.empty());
  std::vector<SweepCell> cells(ks.size());
  for (std::size_t run = 0; run < runs; ++run) {
    const auto index = build(static_cast<std::uint64_t>(run));
    const double construction = static_cast<double>(
        index.Stats().construction_distance_computations);
    for (std::size_t i = 0; i < ks.size(); ++i) {
      cells[i].avg_construction_distances += construction;
      for (const Object& q : queries) {
        SearchStats stats;
        const auto result = index.KnnSearch(q, ks[i], &stats);
        cells[i].avg_distance_computations +=
            static_cast<double>(stats.distance_computations);
        cells[i].avg_result_size += static_cast<double>(result.size());
      }
    }
  }
  const double per_query = static_cast<double>(runs * queries.size());
  for (auto& cell : cells) {
    cell.avg_distance_computations /= per_query;
    cell.avg_result_size /= per_query;
    cell.avg_construction_distances /= static_cast<double>(runs);
  }
  return cells;
}

/// Extracts the distance-computation column from sweep cells.
inline std::vector<double> DistanceColumn(const std::vector<SweepCell>& cells) {
  std::vector<double> out;
  out.reserve(cells.size());
  for (const auto& c : cells) out.push_back(c.avg_distance_computations);
  return out;
}

}  // namespace mvp::harness

#endif  // MVPTREE_HARNESS_WORKLOAD_H_

#ifndef MVPTREE_DYNAMIC_DYNAMIC_OVERLAY_H_
#define MVPTREE_DYNAMIC_DYNAMIC_OVERLAY_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/codec.h"
#include "common/macros.h"
#include "common/query.h"
#include "common/serialize.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "dynamic/dynamic_index.h"
#include "dynamic/mvp_forest.h"
#include "metric/metric.h"
#include "serve/sharded_index.h"
#include "serve/thread_pool.h"
#include "snapshot/manifest.h"
#include "snapshot/snapshot_store.h"
#include "wal/wal.h"

/// \file
/// The durable mutable layer over a static serving index
/// (docs/online_updates.md).
///
/// A DynamicOverlay serves the union of two structures:
///
///   - the BASE: the snapshot store's committed full generation — a
///     ShardedMvpIndex, heap or flat/mmap-served, completely immutable;
///   - the MEMTABLE: an MvpForest (dynamic/mvp_forest.h, the Bentley-Saxe
///     structure) absorbing every insert since the base was written, plus a
///     tombstone set naming the base objects erased since then.
///
/// Queries fan out to both sides, filter base hits through the tombstones,
/// and merge by (distance, id) — the same order a single index produces, so
/// results are bit-identical to an index rebuilt from scratch over the
/// current live set (the overlay-equivalence test holds exactly this).
///
/// Every object carries a STABLE id: issued once at insert, never reused,
/// reported by all queries. The base maps its dense global ids to stable
/// ids through the generation's kStableIds chunk (identity for generations
/// built directly from a dataset); the memtable's dense forest ids map
/// affinely (stable = offset + forest id). Both maps are strictly
/// ascending, which is what preserves the (distance, id) tie-break order
/// across the translation.
///
/// Durability is write-ahead: a mutation is logged (wal/wal.h) and applied
/// in memory under one lock — so WAL order equals apply order equals seq
/// order — and acknowledged only after the log is fsynced (group commit
/// batches concurrent acks into one fsync). Recovery loads the committed
/// generation and replays the log's suffix above the manifest's
/// last_applied_seq watermark; replay is therefore idempotent across any
/// crash point, which the crash drill verifies by killing the process at
/// every injected fault site.
///
/// Checkpoint() folds the current mutations into a DELTA generation — the
/// serialized memtable + tombstones, layered on the unchanged base via the
/// manifest's base_generation field — so checkpoint I/O is proportional to
/// the churn since the base was written, never to the index size (the
/// base's container bytes are reused in place, not rewritten). Compact()
/// is the major merge: rebuild one full generation from the live set, swap
/// it in as the new base, and start an empty memtable. Both truncate the
/// WAL under the lock, so no acknowledged record is ever dropped before a
/// committed generation holds it.
///
/// Thread safety: one mutex serializes mutations, queries and snapshots.
/// Mutations hold it only for the in-memory apply (the fsync wait runs
/// outside, batched); queries hold it for the search. Checkpoints hold it
/// while serializing + committing, which pauses writers for a duration
/// proportional to the memtable — the price of the WAL-truncate atomicity.

namespace mvp::dynamic {

template <typename Object, metric::MetricFor<Object> Metric,
          CodecFor<Object> Codec>
class DynamicOverlay {
 public:
  using Memtable = MvpForest<Object, Metric>;
  using BaseIndex = serve::ShardedMvpIndex<Object, Metric>;
  // The memtable slot is typed against the DynamicIndex interface, so a
  // signature drift in the forest's merge machinery is a compile error
  // here, not a silently different overlay.
  static_assert(DynamicIndexFor<Memtable, Object>,
                "MvpForest must satisfy the DynamicIndex interface");

  struct Options {
    /// Memtable (Bentley-Saxe forest) parameters.
    typename Memtable::Options memtable;
    /// Build parameters for generations this overlay writes (Compact, or a
    /// first checkpoint with no base). When opened over an existing base,
    /// the base's own parameters replace these so compactions preserve the
    /// serving configuration.
    typename BaseIndex::Options rebuild;
  };

  /// Mutation/lifecycle counters (queries are counted by serve::ServeStats
  /// at the executor layer, not here).
  struct Stats {
    std::uint64_t inserts = 0;
    std::uint64_t erases = 0;
    std::uint64_t checkpoints = 0;
    std::uint64_t compactions = 0;
    std::uint64_t replayed_records = 0;  ///< WAL records applied by Open
    std::uint64_t shipped_records = 0;   ///< records applied by ApplyReplicated
    /// Shard chunks compaction wrote by reference instead of rewriting
    /// (snapshot/format.h kShardTreeRef) — the I/O saved on low-churn
    /// compactions.
    std::uint64_t compaction_reused_chunks = 0;
  };

  /// Opens (or creates) the dynamic store at `dir`: loads the committed
  /// generation (full or delta; heap or flat), replays the WAL suffix
  /// above its watermark, repairs a torn WAL tail, and opens the log for
  /// appending. An empty/missing directory is a fresh store.
  static Result<std::unique_ptr<DynamicOverlay>> Open(
      std::string dir, Metric metric, Codec codec, Options options = {},
      serve::ThreadPool* pool = nullptr) {
    std::unique_ptr<DynamicOverlay> overlay(new DynamicOverlay(
        std::move(dir), std::move(metric), std::move(codec),
        std::move(options)));
    MVP_RETURN_NOT_OK(overlay->Recover(pool));
    return overlay;
  }

  DynamicOverlay(const DynamicOverlay&) = delete;
  DynamicOverlay& operator=(const DynamicOverlay&) = delete;

  /// Durably inserts `object`; returns its stable id. The id is assigned
  /// and the mutation applied under the lock (keeping WAL order = apply
  /// order); the call then waits for the group-commit fsync covering its
  /// record, so a returned id is crash-durable.
  Result<std::size_t> Insert(Object object) MVP_EXCLUDES(mu_) {
    BinaryWriter payload;
    codec_.Write(payload, object);
    std::uint64_t seq = 0;
    std::size_t id = 0;
    {
      MutexLock lock(&mu_);
      seq = next_seq_ + 1;
      id = static_cast<std::size_t>(next_stable_id_);
      wal::WalRecord record;
      record.op = wal::WalOp::kInsert;
      record.seq = seq;
      record.id = id;
      record.payload = std::move(payload).TakeBuffer();
      MVP_RETURN_NOT_OK(wal_->Append(record));
      next_seq_ = seq;
      const std::size_t forest_id = memtable_.Insert(std::move(object));
      MVP_DCHECK(memtable_offset_ + forest_id == next_stable_id_);
      (void)forest_id;  // checked by MVP_DCHECK; unused in release builds
      ++next_stable_id_;
      ++stats_.inserts;
    }
    MVP_RETURN_NOT_OK(wal_->Sync(seq));
    return id;
  }

  /// Durably erases the live object with `stable_id`. NotFound when the id
  /// was never issued or is already erased — checked BEFORE the WAL append,
  /// so the log only ever holds erases that applied (replay can treat a
  /// failing one as corruption rather than guessing).
  Status Erase(std::size_t stable_id) MVP_EXCLUDES(mu_) {
    std::uint64_t seq = 0;
    {
      MutexLock lock(&mu_);
      if (!ContainsLocked(stable_id)) {
        return Status::NotFound("no live object with this id");
      }
      seq = next_seq_ + 1;
      wal::WalRecord record;
      record.op = wal::WalOp::kErase;
      record.seq = seq;
      record.id = stable_id;
      MVP_RETURN_NOT_OK(wal_->Append(record));
      next_seq_ = seq;
      ApplyEraseLocked(stable_id);
      ++stats_.erases;
    }
    return wal_->Sync(seq);
  }

  /// All live objects within `radius`, sorted by (distance, stable id) —
  /// bit-identical to the same query on an index rebuilt from the live set
  /// (with its dense ids mapped through the ascending stable-id order).
  std::vector<Neighbor> RangeSearch(const Object& query, double radius,
                                    SearchStats* stats = nullptr) const
      MVP_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    std::vector<Neighbor> result;
    if (base_.has_value()) {
      for (const Neighbor& hit : base_->RangeSearch(query, radius, stats)) {
        const std::uint64_t stable = BaseStableLocked(hit.id);
        if (tombstones_.count(stable) != 0) continue;
        result.push_back(
            Neighbor{static_cast<std::size_t>(stable), hit.distance});
      }
    }
    for (const Neighbor& hit : memtable_.RangeSearch(query, radius, stats)) {
      result.push_back(Neighbor{
          static_cast<std::size_t>(memtable_offset_) + hit.id, hit.distance});
    }
    std::sort(result.begin(), result.end(), NeighborLess);
    return result;
  }

  /// The k nearest live objects, same order contract as RangeSearch. The
  /// base is over-fetched by the tombstone count so k live base hits
  /// survive the filter whenever the base still holds that many.
  std::vector<Neighbor> KnnSearch(const Object& query, std::size_t k,
                                  SearchStats* stats = nullptr) const
      MVP_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    std::vector<Neighbor> merged;
    if (base_.has_value()) {
      const auto hits =
          base_->KnnSearch(query, k + tombstones_.size(), stats);
      for (const Neighbor& hit : hits) {
        const std::uint64_t stable = BaseStableLocked(hit.id);
        if (tombstones_.count(stable) != 0) continue;
        merged.push_back(
            Neighbor{static_cast<std::size_t>(stable), hit.distance});
      }
    }
    for (const Neighbor& hit : memtable_.KnnSearch(query, k, stats)) {
      merged.push_back(Neighbor{
          static_cast<std::size_t>(memtable_offset_) + hit.id, hit.distance});
    }
    std::sort(merged.begin(), merged.end(), NeighborLess);
    if (merged.size() > k) merged.resize(k);
    return merged;
  }

  /// RangeSearch appending unsorted hits (stable ids) into the caller-owned
  /// `*out` — the serve::RunBatch harvest interface, so mutable collections
  /// degrade under deadlines exactly like static ones. On a mid-search
  /// cancellation everything the base found before the cut is
  /// tombstone-filtered, translated and appended (each hit passed the exact
  /// d <= r test, so the harvest is a true subset of the live answer)
  /// before CancelledError is rethrown; the memtable is skipped — its
  /// deadline is already blown. Memtable distance evaluations are not
  /// cancellation points (the forest runs the raw metric); base shards are,
  /// which is where the index-proportional work lives.
  void RangeSearchInto(const Object& query, double radius,
                       std::vector<Neighbor>* out,
                       SearchStats* stats = nullptr) const MVP_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    bool cancelled = false;
    if (base_.has_value()) {
      std::vector<Neighbor> base_hits;
      try {
        base_->RangeSearchInto(query, radius, &base_hits, stats);
      } catch (const serve::CancelledError&) {
        cancelled = true;
      }
      AppendBaseHitsLocked(base_hits, out);
    }
    if (!cancelled) {
      AppendMemtableHitsLocked(memtable_.RangeSearch(query, radius, stats),
                               out);
    }
    if (cancelled) throw serve::CancelledError();
  }

  /// KnnSearch's harvest interface: appends each base shard's candidate set
  /// (over-fetched by the tombstone count, so k live candidates survive the
  /// filter whenever the base holds that many) plus the memtable's best k,
  /// all unsorted — the caller sorts and trims to k, landing on exactly the
  /// KnnSearch result. On cancellation the candidates evaluated so far are
  /// appended before the rethrow, same contract as the sharded index.
  void KnnSearchInto(const Object& query, std::size_t k,
                     std::vector<Neighbor>* out,
                     SearchStats* stats = nullptr) const MVP_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    bool cancelled = false;
    if (base_.has_value()) {
      std::vector<Neighbor> base_hits;
      try {
        base_->KnnSearchInto(query, k + tombstones_.size(), &base_hits,
                             stats);
      } catch (const serve::CancelledError&) {
        cancelled = true;
      }
      AppendBaseHitsLocked(base_hits, out);
    }
    if (!cancelled) {
      AppendMemtableHitsLocked(memtable_.KnnSearch(query, k, stats), out);
    }
    if (cancelled) throw serve::CancelledError();
  }

  std::size_t size() const MVP_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return (base_.has_value() ? base_->size() : 0) - tombstones_.size() +
           memtable_.size();
  }

  /// Folds the outstanding mutations into a committed generation and
  /// truncates the WAL; returns the new generation (or the current one
  /// when there is nothing new to fold). With a base this writes a DELTA
  /// generation — serialized memtable + tombstones layered on the
  /// base_generation — so the I/O is proportional to churn, not index
  /// size. Without a base (fresh store) it falls through to a full
  /// compaction.
  Result<std::uint64_t> Checkpoint() MVP_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    if (next_seq_ == checkpoint_seq_ && generation_ != 0) {
      return generation_;  // nothing mutated since the last fold
    }
    MVP_RETURN_NOT_OK(wal_->SyncAll());
    if (!base_.has_value()) return CompactLocked(nullptr);
    const std::uint64_t issued = next_stable_id_ - memtable_offset_;
    std::vector<std::uint64_t> forest_ids(
        static_cast<std::size_t>(issued));
    for (std::size_t f = 0; f < forest_ids.size(); ++f) {
      forest_ids[f] = memtable_offset_ + f;
    }
    const std::vector<std::uint64_t> tombs(tombstones_.begin(),
                                           tombstones_.end());
    auto gen = store_.SaveDelta(memtable_, forest_ids, tombs,
                                base_generation_, next_seq_, next_stable_id_,
                                codec_);
    if (!gen.ok()) return gen.status();
    MVP_RETURN_NOT_OK(wal_->TruncateToEmpty());
    generation_ = gen.value();
    checkpoint_seq_ = next_seq_;
    ++stats_.checkpoints;
    return generation_;
  }

  /// Major merge: rebuilds ONE full generation from the live set (base
  /// minus tombstones, plus memtable), commits it with its stable-id map,
  /// truncates the WAL, and swaps it in as the new base with an empty
  /// memtable. With a pool the shard trees build in parallel.
  Result<std::uint64_t> Compact(serve::ThreadPool* pool = nullptr)
      MVP_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    MVP_RETURN_NOT_OK(wal_->SyncAll());
    return CompactLocked(pool);
  }

  /// Applies a batch of leader WAL records shipped by replication
  /// (docs/network_serving.md). Records carry the leader's seq and stable
  /// ids verbatim; each must be exactly the next sequence number —
  /// Corruption on a gap or overlap, so a stream that skipped records can
  /// never be half-applied silently. Every record is appended to the local
  /// WAL before it is applied (same order discipline as Insert/Erase), and
  /// one group-commit fsync covers the whole batch, so a follower crash
  /// replays exactly what it acknowledged.
  Status ApplyReplicated(const std::vector<wal::WalRecord>& records)
      MVP_EXCLUDES(mu_) {
    if (records.empty()) return Status::OK();
    std::uint64_t last = 0;
    {
      MutexLock lock(&mu_);
      for (const wal::WalRecord& record : records) {
        if (record.seq != next_seq_ + 1) {
          return Status::Corruption(
              "replicated wal record out of sequence (expected " +
              std::to_string(next_seq_ + 1) + ", got " +
              std::to_string(record.seq) + ")");
        }
        MVP_RETURN_NOT_OK(wal_->Append(record));
        MVP_RETURN_NOT_OK(ApplyRecordLocked(record));
        next_seq_ = record.seq;
        ++stats_.shipped_records;
        last = record.seq;
      }
    }
    return wal_->Sync(last);
  }

  // Introspection (tests, CLI, bench).
  std::uint64_t generation() const MVP_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return generation_;
  }
  std::uint64_t base_generation() const MVP_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return base_generation_;
  }
  std::uint64_t next_stable_id() const MVP_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return next_stable_id_;
  }
  /// Last WAL sequence applied in memory (0 = none). For a follower this
  /// is its replication cursor: the leader ships records above it.
  std::uint64_t applied_seq() const MVP_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return next_seq_;
  }
  /// Highest seq folded into the committed generation — the WAL floor.
  /// Records at or below it live only in generations, so a follower whose
  /// cursor is below the leader's floor must pull generations instead.
  std::uint64_t checkpoint_seq() const MVP_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return checkpoint_seq_;
  }
  std::size_t memtable_size() const MVP_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return memtable_.size();
  }
  std::size_t tombstone_count() const MVP_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return tombstones_.size();
  }
  bool base_flat_serving() const MVP_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return base_.has_value() && base_->flat_serving();
  }
  Stats stats() const MVP_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return stats_;
  }
  wal::WalWriterStats wal_stats() const { return wal_->stats(); }
  const std::string& dir() const { return dir_; }
  std::string wal_path() const { return dir_ + "/" + wal::kWalFileName; }

 private:
  DynamicOverlay(std::string dir, Metric metric, Codec codec,
                 Options options)
      : dir_(std::move(dir)),
        metric_(std::move(metric)),
        codec_(std::move(codec)),
        options_(std::move(options)),
        store_(dir_),
        memtable_(metric_, options_.memtable) {}

  /// Stable id of base global id `g`.
  std::uint64_t BaseStableLocked(std::size_t g) const MVP_REQUIRES(mu_) {
    return base_stable_ids_.empty() ? g : base_stable_ids_[g];
  }

  /// Filters base hits through the tombstones and appends them to `*out`
  /// with their stable ids.
  void AppendBaseHitsLocked(const std::vector<Neighbor>& hits,
                            std::vector<Neighbor>* out) const
      MVP_REQUIRES(mu_) {
    for (const Neighbor& hit : hits) {
      const std::uint64_t stable = BaseStableLocked(hit.id);
      if (tombstones_.count(stable) != 0) continue;
      out->push_back(
          Neighbor{static_cast<std::size_t>(stable), hit.distance});
    }
  }

  /// Appends memtable hits to `*out` with their stable ids.
  void AppendMemtableHitsLocked(const std::vector<Neighbor>& hits,
                                std::vector<Neighbor>* out) const
      MVP_REQUIRES(mu_) {
    for (const Neighbor& hit : hits) {
      out->push_back(Neighbor{
          static_cast<std::size_t>(memtable_offset_) + hit.id, hit.distance});
    }
  }

  /// True when `stable_id` names a live object (base or memtable).
  bool ContainsLocked(std::uint64_t stable_id) const MVP_REQUIRES(mu_) {
    if (stable_id >= memtable_offset_) {
      return memtable_.contains(
          static_cast<std::size_t>(stable_id - memtable_offset_));
    }
    if (!base_.has_value() || tombstones_.count(stable_id) != 0) return false;
    if (base_stable_ids_.empty()) return stable_id < base_->size();
    return std::binary_search(base_stable_ids_.begin(),
                              base_stable_ids_.end(), stable_id);
  }

  /// Applies an erase that ContainsLocked already validated.
  void ApplyEraseLocked(std::uint64_t stable_id) MVP_REQUIRES(mu_) {
    if (stable_id >= memtable_offset_) {
      const Status erased = memtable_.Erase(
          static_cast<std::size_t>(stable_id - memtable_offset_));
      MVP_DCHECK(erased.ok());
      (void)erased;  // validated by ContainsLocked; checked by MVP_DCHECK
    } else {
      tombstones_.insert(stable_id);
    }
  }

  /// Collects every live base object as (stable id, owned object). Reads
  /// heap trees or flat arenas (materializing the mapped vectors).
  void GatherBaseLiveLocked(
      std::vector<std::pair<std::uint64_t, Object>>* live) const
      MVP_REQUIRES(mu_) {
    const std::size_t k = base_->num_shards();
    for (std::size_t s = 0; s < k; ++s) {
      if (base_->flat_serving()) {
        if constexpr (BaseIndex::kFlatCapable) {
          const auto& view = base_->flat_shard(s);
          for (std::size_t local = 0; local < view.size(); ++local) {
            const std::uint64_t stable = BaseStableLocked(local * k + s);
            if (tombstones_.count(stable) != 0) continue;
            const auto object = view.object(local);
            live->emplace_back(stable,
                               Object(object.data(),
                                      object.data() + object.size()));
          }
        }
      } else {
        const auto& tree = base_->shard(s);
        const auto& globals = base_->shard_global_ids(s);
        for (std::size_t local = 0; local < tree.size(); ++local) {
          const std::uint64_t stable = BaseStableLocked(globals[local]);
          if (tombstones_.count(stable) != 0) continue;
          live->emplace_back(stable, tree.object(local));
        }
      }
    }
  }

  Result<std::uint64_t> CompactLocked(serve::ThreadPool* pool)
      MVP_REQUIRES(mu_) {
    std::vector<std::pair<std::uint64_t, Object>> live;
    if (base_.has_value()) GatherBaseLiveLocked(&live);
    memtable_.ForEachLive([&](std::size_t forest_id, const Object& object) {
      live.emplace_back(memtable_offset_ + forest_id, object);
    });
    // Dense global ids must rise with stable ids so the (distance, id)
    // tie-break order survives the translation.
    std::sort(live.begin(), live.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    std::vector<std::uint64_t> stable_ids;
    std::vector<Object> objects;
    stable_ids.reserve(live.size());
    objects.reserve(live.size());
    for (auto& entry : live) {
      stable_ids.push_back(entry.first);
      objects.push_back(std::move(entry.second));
    }
    auto built =
        BaseIndex::Build(std::move(objects), metric_, options_.rebuild, pool);
    if (!built.ok()) return built.status();
    // Offer the outgoing base for chunk reuse: shards whose serialized
    // bytes are unchanged (zero churn in that shard) are written as ~36-byte
    // refs into the old container instead of full rewrites.
    std::uint64_t reused = 0;
    auto gen = store_.SaveCompacted(built.value(), stable_ids, next_seq_,
                                    next_stable_id_, codec_, base_generation_,
                                    &reused);
    if (!gen.ok()) return gen.status();
    stats_.compaction_reused_chunks += reused;
    MVP_RETURN_NOT_OK(wal_->TruncateToEmpty());
    base_ = std::move(built).ValueOrDie();
    bool identity = true;
    for (std::size_t g = 0; g < stable_ids.size(); ++g) {
      if (stable_ids[g] != g) {
        identity = false;
        break;
      }
    }
    base_stable_ids_ = identity ? std::vector<std::uint64_t>{}
                                : std::move(stable_ids);
    base_generation_ = gen.value();
    generation_ = gen.value();
    checkpoint_seq_ = next_seq_;
    memtable_offset_ = next_stable_id_;
    memtable_ = Memtable(metric_, options_.memtable);
    tombstones_.clear();
    ++stats_.compactions;
    return generation_;
  }

  /// Loads the full generation `gen` as the base and resets the mutable
  /// layer to empty on top of it.
  Status InstallBaseLocked(std::uint64_t gen, serve::ThreadPool* pool)
      MVP_REQUIRES(mu_) {
    auto manifest = store_.ReadManifest(gen);
    if (!manifest.ok()) return manifest.status();
    const snapshot::SnapshotManifest& m = manifest.value();
    if (m.index_kind == snapshot::IndexKind::kShardedMvpIndex) {
      auto loaded =
          store_.LoadSharded<Object, Metric>(metric_, codec_, pool, gen);
      if (!loaded.ok()) return loaded.status();
      base_stable_ids_ = std::move(loaded.value().stable_ids);
      base_.emplace(std::move(loaded.value().index));
    } else if (m.index_kind == snapshot::IndexKind::kFlatShardedMvpIndex) {
      if constexpr (BaseIndex::kFlatCapable) {
        auto loaded = store_.OpenFlat<Metric>(metric_, pool, gen);
        if (!loaded.ok()) return loaded.status();
        base_stable_ids_.clear();  // flat generations are always identity
        base_.emplace(std::move(loaded.value().index));
      } else {
        return Status::InvalidArgument(
            "flat base generations require dense vector objects");
      }
    } else {
      return Status::InvalidArgument(
          "dynamic overlay bases must be sharded (heap or flat) generations");
    }
    options_.rebuild = base_->options();
    base_generation_ = gen;
    memtable_offset_ = m.next_stable_id != 0 ? m.next_stable_id
                                             : m.object_count;
    next_stable_id_ = memtable_offset_;
    memtable_ = Memtable(metric_, options_.memtable);
    tombstones_.clear();
    return Status::OK();
  }

  /// Applies one WAL record that originated elsewhere (recovery replay or
  /// a shipped leader record). The record was originally applied against
  /// exactly this state (same generation, same prior records), so every
  /// check here failing means a corrupt or mismatched log, not a tolerable
  /// anomaly.
  Status ApplyRecordLocked(const wal::WalRecord& record) MVP_REQUIRES(mu_) {
    if (record.op == wal::WalOp::kInsert) {
      Object object;
      BinaryReader reader(record.payload.data(), record.payload.size());
      MVP_RETURN_NOT_OK(codec_.Read(reader, &object));
      if (!reader.AtEnd()) {
        return Status::Corruption("trailing bytes in wal insert payload");
      }
      if (record.id != next_stable_id_) {
        return Status::Corruption("wal insert id out of sequence");
      }
      const std::size_t forest_id = memtable_.Insert(std::move(object));
      if (memtable_offset_ + forest_id != record.id) {
        return Status::Corruption("wal insert id mismatches memtable state");
      }
      ++next_stable_id_;
    } else {
      if (!ContainsLocked(record.id)) {
        return Status::Corruption("wal erases an id that is not live");
      }
      ApplyEraseLocked(record.id);
    }
    return Status::OK();
  }

  /// Re-applies one WAL record during Open.
  Status ReplayLocked(const wal::WalRecord& record) MVP_REQUIRES(mu_) {
    MVP_RETURN_NOT_OK(ApplyRecordLocked(record));
    ++stats_.replayed_records;
    return Status::OK();
  }

  Status Recover(serve::ThreadPool* pool) MVP_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    std::uint64_t last_applied = 0;
    auto current = store_.CurrentGeneration();
    if (current.ok()) {
      auto manifest = store_.ReadManifest(current.value());
      if (!manifest.ok()) return manifest.status();
      const snapshot::SnapshotManifest& m = manifest.value();
      generation_ = current.value();
      last_applied = m.last_applied_seq;
      if (m.index_kind == snapshot::IndexKind::kDynamicDelta) {
        if (m.base_generation == 0 ||
            m.base_generation >= current.value()) {
          return Status::Corruption(
              "delta generation names an invalid base generation");
        }
        MVP_RETURN_NOT_OK(InstallBaseLocked(m.base_generation, pool));
        auto delta = store_.LoadDelta<Object, Metric>(
            metric_, codec_, options_.memtable, current.value());
        if (!delta.ok()) return delta.status();
        auto& d = delta.value();
        // The overlay's memtable mapping is affine (stable = offset +
        // forest id); the persisted map must agree with the base's
        // high-water mark or the two generations do not belong together.
        for (std::size_t f = 0; f < d.forest_stable_ids.size(); ++f) {
          if (d.forest_stable_ids[f] != memtable_offset_ + f) {
            return Status::Corruption(
                "delta stable-id map does not continue its base generation");
          }
        }
        if (m.next_stable_id !=
            memtable_offset_ + d.forest_stable_ids.size()) {
          return Status::Corruption(
              "delta id high-water mark mismatches its stable-id map");
        }
        for (const std::uint64_t t : d.base_tombstones) {
          if (t >= memtable_offset_) {
            return Status::Corruption(
                "delta tombstone does not name a base object");
          }
        }
        memtable_ = std::move(d.forest);
        tombstones_.clear();
        tombstones_.insert(d.base_tombstones.begin(),
                           d.base_tombstones.end());
        next_stable_id_ = m.next_stable_id;
      } else {
        MVP_RETURN_NOT_OK(InstallBaseLocked(current.value(), pool));
      }
    }
    next_seq_ = last_applied;
    checkpoint_seq_ = last_applied;

    auto log = wal::ReadWal(wal_path());
    if (!log.ok()) return log.status();
    for (const wal::WalRecord& record : log.value().records) {
      // Records at or below the manifest watermark are already folded into
      // the committed generation (a crash between commit and WAL truncate
      // leaves them behind) — skipping them is what makes replay
      // idempotent.
      if (record.seq <= last_applied) continue;
      MVP_RETURN_NOT_OK(ReplayLocked(record));
      next_seq_ = record.seq;
    }
    if (log.value().torn_tail) {
      MVP_RETURN_NOT_OK(
          wal::TruncateWal(wal_path(), log.value().valid_bytes));
    }
    auto writer = wal::WalWriter::Open(wal_path());
    if (!writer.ok()) return writer.status();
    wal_ = std::move(writer).ValueOrDie();
    return Status::OK();
  }

  const std::string dir_;
  const Metric metric_;
  const Codec codec_;
  Options options_;
  snapshot::SnapshotStore store_;
  std::unique_ptr<wal::WalWriter> wal_;

  mutable Mutex mu_;
  std::optional<BaseIndex> base_ MVP_GUARDED_BY(mu_);
  /// Base global id -> stable id, ascending; empty = identity.
  std::vector<std::uint64_t> base_stable_ids_ MVP_GUARDED_BY(mu_);
  std::uint64_t base_generation_ MVP_GUARDED_BY(mu_) = 0;  ///< 0 = no base
  std::uint64_t generation_ MVP_GUARDED_BY(mu_) = 0;  ///< committed gen
  Memtable memtable_ MVP_GUARDED_BY(mu_);
  /// First stable id owned by the memtable; smaller ids are the base's.
  std::uint64_t memtable_offset_ MVP_GUARDED_BY(mu_) = 0;
  /// Erased base stable ids (memtable erases live inside the forest).
  std::set<std::uint64_t> tombstones_ MVP_GUARDED_BY(mu_);
  std::uint64_t next_seq_ MVP_GUARDED_BY(mu_) = 0;  ///< last assigned seq
  std::uint64_t next_stable_id_ MVP_GUARDED_BY(mu_) = 0;
  /// Seq folded into the committed generation (WAL truncation watermark).
  std::uint64_t checkpoint_seq_ MVP_GUARDED_BY(mu_) = 0;
  Stats stats_ MVP_GUARDED_BY(mu_);
};

}  // namespace mvp::dynamic

#endif  // MVPTREE_DYNAMIC_DYNAMIC_OVERLAY_H_

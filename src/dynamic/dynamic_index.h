#ifndef MVPTREE_DYNAMIC_DYNAMIC_INDEX_H_
#define MVPTREE_DYNAMIC_DYNAMIC_INDEX_H_

#include <concepts>
#include <cstddef>
#include <vector>

#include "common/query.h"
#include "common/status.h"

/// \file
/// The mutable-index interface the serving overlay builds on.
///
/// A DynamicIndex is anything that can absorb inserts and erases online and
/// answer the two metric queries over its live contents: the contract the
/// memtable slot of dynamic/dynamic_overlay.h requires. MvpForest (the
/// Bentley-Saxe logarithmic method) is the bundled implementation; the
/// concept is what keeps it honest — the overlay and the tier-1 tests
/// static_assert against the interface, so an accidental signature change
/// in the merge machinery is a compile error, not a silent drift.
///
/// Contract:
///  - Insert returns a stable id: dense, starting at 0, issued in call
///    order, never reused. Queries report these ids.
///  - Erase tombstones a live id (NotFound otherwise); the object stops
///    appearing in results immediately.
///  - RangeSearch returns every live object within the radius, sorted by
///    (distance, id); KnnSearch the k nearest live objects, same order.
///  - size() is the live count (inserts minus erases).

namespace mvp::dynamic {

template <typename Index, typename Object>
concept DynamicIndexFor =
    requires(Index index, const Index const_index, Object object,
             std::size_t id, double radius, std::size_t k,
             SearchStats* stats) {
      { index.Insert(std::move(object)) } -> std::same_as<std::size_t>;
      { index.Erase(id) } -> std::same_as<Status>;
      {
        const_index.RangeSearch(object, radius, stats)
      } -> std::same_as<std::vector<Neighbor>>;
      {
        const_index.KnnSearch(object, k, stats)
      } -> std::same_as<std::vector<Neighbor>>;
      { const_index.size() } -> std::convertible_to<std::size_t>;
    };

}  // namespace mvp::dynamic

#endif  // MVPTREE_DYNAMIC_DYNAMIC_INDEX_H_

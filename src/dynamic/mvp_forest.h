#ifndef MVPTREE_DYNAMIC_MVP_FOREST_H_
#define MVPTREE_DYNAMIC_MVP_FOREST_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "common/codec.h"
#include "common/macros.h"
#include "common/query.h"
#include "common/status.h"
#include "core/mvp_tree.h"
#include "metric/metric.h"

/// \file
/// Dynamic mvp-tree index — the paper's §6 open problem.
///
/// "Mvp-trees, like other distance based index structures, is a static index
/// structure. ... Handling update operations (insertion and deletion)
/// without major restructuring, and without violating the balanced structure
/// of the tree is an open problem."
///
/// MvpForest answers it with the classic static-to-dynamic transformation
/// (the Bentley-Saxe logarithmic method): live data is partitioned into a
/// small unindexed write buffer plus O(log n) static mvp-trees of roughly
/// doubling sizes. Inserts fill the buffer; a full buffer is merged with the
/// maximal run of occupied levels and rebuilt as ONE balanced static tree at
/// the next level — amortized O(log^2 n) distance computations per insert,
/// and every tree is always a freshly built, balanced mvp-tree, so the
/// balance guarantee of the static structure is preserved by construction.
/// Deletes are tombstones, physically dropped whenever their level is
/// rebuilt (plus a global compaction when tombstones exceed half the data).
///
/// Queries fan out to the buffer (linear scan) and every live tree, then
/// filter tombstones; results carry the stable ids that Insert returned.

namespace mvp::dynamic {

template <typename Object, metric::MetricFor<Object> Metric>
class MvpForest {
 public:
  using Tree = core::MvpTree<Object, Metric>;

  struct Options {
    /// Static-tree construction parameters (see core::MvpTree).
    typename Tree::Options tree;
    /// Inserts buffered before the first level is built. Level i holds up
    /// to buffer_capacity * 2^i points.
    std::size_t buffer_capacity = 64;
    /// Compact everything when deleted points exceed this fraction of all
    /// stored points.
    double max_tombstone_fraction = 0.5;
  };

  explicit MvpForest(Metric metric, Options options = Options{})
      : metric_(std::move(metric)), options_(std::move(options)) {
    MVP_DCHECK(options_.buffer_capacity >= 1);
  }

  /// Inserts an object; returns its stable id (used by Erase and reported
  /// in query results). Amortized O(log^2 n) distance computations.
  std::size_t Insert(Object obj) {
    const std::size_t id = state_.size();
    state_.push_back(kLive);
    buffer_.push_back(BufferEntry{std::move(obj), id});
    ++live_count_;
    if (buffer_.size() >= options_.buffer_capacity) {
      MergeBufferIntoLevels();
    }
    return id;
  }

  /// Tombstones an id. NotFound if the id was never issued or is already
  /// deleted. O(1); physical removal happens at the next rebuild touching
  /// its level.
  Status Erase(std::size_t id) {
    if (id >= state_.size() || state_[id] == kDeleted) {
      return Status::NotFound("no live object with this id");
    }
    state_[id] = kDeleted;
    --live_count_;
    // The buffer can drop the point immediately.
    for (auto it = buffer_.begin(); it != buffer_.end(); ++it) {
      if (it->id == id) {
        buffer_.erase(it);
        break;
      }
    }
    for (auto& level : levels_) {
      if (level.has_value() && id >= level->first_id &&
          id < level->id_bound) {
        ++level->tombstones;
      }
    }
    MaybeCompact();
    return Status::OK();
  }

  /// All live objects within `radius` of `query`, sorted by distance then
  /// id (stable insert ids).
  std::vector<Neighbor> RangeSearch(const Object& query, double radius,
                                    SearchStats* stats = nullptr) const {
    std::vector<Neighbor> result;
    for (const auto& entry : buffer_) {
      const double d = metric_(query, entry.object);
      if (stats != nullptr) ++stats->distance_computations;
      if (d <= radius) result.push_back(Neighbor{entry.id, d});
    }
    for (const auto& level : levels_) {
      if (!level.has_value()) continue;
      for (const auto& hit : level->tree->RangeSearch(query, radius, stats)) {
        const std::size_t id = level->ids[hit.id];
        if (state_[id] == kLive) result.push_back(Neighbor{id, hit.distance});
      }
    }
    std::sort(result.begin(), result.end(), NeighborLess);
    return result;
  }

  /// The k nearest live objects.
  std::vector<Neighbor> KnnSearch(const Object& query, std::size_t k,
                                  SearchStats* stats = nullptr) const {
    std::vector<Neighbor> candidates;
    for (const auto& entry : buffer_) {
      const double d = metric_(query, entry.object);
      if (stats != nullptr) ++stats->distance_computations;
      candidates.push_back(Neighbor{entry.id, d});
    }
    for (const auto& level : levels_) {
      if (!level.has_value()) continue;
      // Over-fetch by the level's tombstone count so k live points survive
      // the filter whenever the level has that many.
      const auto hits =
          level->tree->KnnSearch(query, k + level->tombstones, stats);
      for (const auto& hit : hits) {
        const std::size_t id = level->ids[hit.id];
        if (state_[id] == kLive) candidates.push_back(Neighbor{id, hit.distance});
      }
    }
    std::sort(candidates.begin(), candidates.end(), NeighborLess);
    if (candidates.size() > k) candidates.resize(k);
    return candidates;
  }

  std::size_t size() const { return live_count_; }

  /// True when `id` was issued and is still live. Lets a caller validate an
  /// erase BEFORE committing to it elsewhere (the dynamic overlay logs the
  /// erase to its WAL first, and must not log one that would fail).
  bool contains(std::size_t id) const {
    return id < state_.size() && state_[id] == kLive;
  }

  /// Visits every live object as (stable id, object), in no particular
  /// order. This is how the checkpoint/compaction path (dynamic overlay)
  /// drains a memtable into a rebuilt static index without reaching into
  /// the forest's level structure.
  template <typename Fn>
  void ForEachLive(Fn&& fn) const {
    for (const auto& entry : buffer_) {
      fn(entry.id, entry.object);
    }
    for (const auto& level : levels_) {
      if (!level.has_value()) continue;
      for (std::size_t local = 0; local < level->ids.size(); ++local) {
        const std::size_t id = level->ids[local];
        if (state_[id] == kLive) fn(id, level->tree->object(local));
      }
    }
  }

  /// The construction/merge parameters this forest runs with (the snapshot
  /// manifest records the static-tree options so a load can validate them).
  const Options& options() const { return options_; }

  /// Ids issued and later erased (whether or not physically dropped yet).
  std::size_t tombstone_count() const { return state_.size() - live_count_; }

  /// Number of static trees currently live (the "forest width").
  std::size_t num_trees() const {
    std::size_t n = 0;
    for (const auto& level : levels_) n += level.has_value() ? 1 : 0;
    return n;
  }
  std::size_t buffered() const { return buffer_.size(); }

  /// Total distance computations spent building/rebuilding static trees.
  std::uint64_t construction_distance_computations() const {
    return construction_distances_;
  }

  /// Rebuilds everything into a single balanced tree (also drops all
  /// tombstones). Useful before a read-heavy phase.
  void Compact() { RebuildAll(); }

  /// Persists the whole dynamic index: buffer, id state, and every level's
  /// static tree (via MvpTree::Serialize). The metric and Options are the
  /// caller's to re-supply at load time (only `tree` options are embedded,
  /// inside each serialized level).
  template <CodecFor<Object> Codec>
  Status Serialize(BinaryWriter* writer, const Codec& codec) const {
    writer->Write<std::uint32_t>(kMagic);
    writer->Write<std::uint32_t>(kFormatVersion);
    writer->Write<std::uint64_t>(state_.size());
    for (const std::uint8_t s : state_) writer->Write<std::uint8_t>(s);
    writer->Write<std::uint64_t>(buffer_.size());
    for (const auto& entry : buffer_) {
      writer->Write<std::uint64_t>(entry.id);
      codec.Write(*writer, entry.object);
    }
    writer->Write<std::uint64_t>(levels_.size());
    for (const auto& level : levels_) {
      writer->Write<std::uint8_t>(level.has_value() ? 1 : 0);
      if (!level.has_value()) continue;
      writer->Write<std::uint64_t>(level->tombstones);
      writer->Write<std::uint64_t>(level->first_id);
      writer->Write<std::uint64_t>(level->id_bound);
      writer->WriteVector(
          std::vector<std::uint64_t>(level->ids.begin(), level->ids.end()));
      MVP_RETURN_NOT_OK(level->tree->Serialize(writer, codec));
    }
    return Status::OK();
  }

  /// Reconstructs a serialized forest. `options` must match the build-time
  /// options (it governs future merges; the per-level tree options are read
  /// from the stream).
  template <CodecFor<Object> Codec>
  static Result<MvpForest> Deserialize(BinaryReader* reader, Metric metric,
                                       const Codec& codec,
                                       Options options = Options{}) {
    std::uint32_t magic = 0, version = 0;
    MVP_RETURN_NOT_OK(reader->Read<std::uint32_t>(&magic));
    if (magic != kMagic) return Status::Corruption("bad mvp-forest magic");
    MVP_RETURN_NOT_OK(reader->Read<std::uint32_t>(&version));
    if (version != kFormatVersion) {
      return Status::NotSupported("unknown mvp-forest format version");
    }
    MvpForest forest(std::move(metric), std::move(options));
    std::uint64_t state_size = 0;
    MVP_RETURN_NOT_OK(reader->Read<std::uint64_t>(&state_size));
    if (state_size > reader->remaining()) {
      return Status::Corruption("state size exceeds buffer");
    }
    forest.state_.resize(static_cast<std::size_t>(state_size));
    for (auto& s : forest.state_) {
      MVP_RETURN_NOT_OK(reader->Read<std::uint8_t>(&s));
      if (s > kDeleted) return Status::Corruption("bad id state");
    }
    std::uint64_t buffer_size = 0;
    MVP_RETURN_NOT_OK(reader->Read<std::uint64_t>(&buffer_size));
    if (buffer_size > state_size) {
      return Status::Corruption("buffer larger than issued ids");
    }
    forest.buffer_.resize(static_cast<std::size_t>(buffer_size));
    for (auto& entry : forest.buffer_) {
      std::uint64_t id = 0;
      MVP_RETURN_NOT_OK(reader->Read<std::uint64_t>(&id));
      if (id >= state_size) return Status::Corruption("buffer id range");
      entry.id = static_cast<std::size_t>(id);
      MVP_RETURN_NOT_OK(codec.Read(*reader, &entry.object));
    }
    std::uint64_t level_count = 0;
    MVP_RETURN_NOT_OK(reader->Read<std::uint64_t>(&level_count));
    if (level_count > 64) return Status::Corruption("too many levels");
    forest.levels_.resize(static_cast<std::size_t>(level_count));
    for (auto& slot : forest.levels_) {
      std::uint8_t present = 0;
      MVP_RETURN_NOT_OK(reader->Read<std::uint8_t>(&present));
      if (present == 0) continue;
      Level level;
      std::uint64_t tombstones = 0, first_id = 0, id_bound = 0;
      MVP_RETURN_NOT_OK(reader->Read<std::uint64_t>(&tombstones));
      MVP_RETURN_NOT_OK(reader->Read<std::uint64_t>(&first_id));
      MVP_RETURN_NOT_OK(reader->Read<std::uint64_t>(&id_bound));
      std::vector<std::uint64_t> raw_ids;
      MVP_RETURN_NOT_OK(reader->ReadVector(&raw_ids));
      level.tombstones = static_cast<std::size_t>(tombstones);
      level.first_id = static_cast<std::size_t>(first_id);
      level.id_bound = static_cast<std::size_t>(id_bound);
      level.ids.reserve(raw_ids.size());
      for (const std::uint64_t id : raw_ids) {
        if (id >= state_size) return Status::Corruption("level id range");
        level.ids.push_back(static_cast<std::size_t>(id));
      }
      auto tree = Tree::template Deserialize<Codec>(reader, forest.metric_,
                                                    codec);
      if (!tree.ok()) return tree.status();
      if (tree.value().size() != level.ids.size()) {
        return Status::Corruption("level tree size mismatches id map");
      }
      level.tree = std::make_unique<Tree>(std::move(tree).ValueOrDie());
      slot = std::move(level);
    }
    // Recompute the live count from the id states.
    forest.live_count_ = 0;
    for (const std::uint8_t s : forest.state_) {
      forest.live_count_ += s == kLive ? 1 : 0;
    }
    return forest;
  }

 private:
  static constexpr std::uint8_t kLive = 0;
  static constexpr std::uint8_t kDeleted = 1;
  static constexpr std::uint32_t kMagic = 0x46505641;  // "AVPF"
  static constexpr std::uint32_t kFormatVersion = 1;

  struct BufferEntry {
    Object object;
    std::size_t id;
  };

  struct Level {
    std::unique_ptr<Tree> tree;
    std::vector<std::size_t> ids;  ///< tree-local id -> stable id
    std::size_t tombstones = 0;
    // [first_id, id_bound): stable-id range covered by this level, used to
    // attribute Erase calls to levels cheaply. Levels always hold
    // contiguous id ranges because merges take whole levels.
    std::size_t first_id = 0;
    std::size_t id_bound = 0;
  };

  void MergeBufferIntoLevels() {
    // Gather buffer + maximal run of occupied levels.
    std::vector<BufferEntry> batch = std::move(buffer_);
    buffer_.clear();
    std::size_t target = 0;
    while (target < levels_.size() && levels_[target].has_value()) {
      DrainLevel(*levels_[target], batch);
      levels_[target].reset();
      ++target;
    }
    BuildLevel(target, std::move(batch));
  }

  void DrainLevel(Level& level, std::vector<BufferEntry>& batch) {
    for (std::size_t local = 0; local < level.ids.size(); ++local) {
      const std::size_t id = level.ids[local];
      if (state_[id] != kLive) continue;
      batch.push_back(BufferEntry{level.tree->object(local), id});
    }
  }

  void BuildLevel(std::size_t target, std::vector<BufferEntry> batch) {
    if (batch.empty()) return;
    // Keep id ranges contiguous per level for cheap Erase attribution.
    std::sort(batch.begin(), batch.end(),
              [](const BufferEntry& a, const BufferEntry& b) {
                return a.id < b.id;
              });
    std::vector<Object> objects;
    objects.reserve(batch.size());
    Level level;
    level.ids.reserve(batch.size());
    level.first_id = batch.front().id;
    level.id_bound = batch.back().id + 1;
    for (auto& entry : batch) {
      objects.push_back(std::move(entry.object));
      level.ids.push_back(entry.id);
    }
    auto built = Tree::Build(std::move(objects), metric_, options_.tree);
    // Options are validated once in the constructor path; Build can only
    // fail on bad options, so this cannot fail here.
    MVP_DCHECK(built.ok());
    level.tree = std::make_unique<Tree>(std::move(built).ValueOrDie());
    construction_distances_ +=
        level.tree->Stats().construction_distance_computations;
    if (levels_.size() <= target) levels_.resize(target + 1);
    levels_[target] = std::move(level);
  }

  void MaybeCompact() {
    std::size_t stored = buffer_.size();
    std::size_t dead = 0;
    for (const auto& level : levels_) {
      if (!level.has_value()) continue;
      stored += level->ids.size();
      dead += level->tombstones;
    }
    if (stored > 0 &&
        static_cast<double>(dead) >
            options_.max_tombstone_fraction * static_cast<double>(stored)) {
      RebuildAll();
    }
  }

  void RebuildAll() {
    std::vector<BufferEntry> batch = std::move(buffer_);
    buffer_.clear();
    std::size_t target = 0;
    for (auto& level : levels_) {
      if (!level.has_value()) continue;
      DrainLevel(*level, batch);
      level.reset();
    }
    levels_.clear();
    // Place the compacted tree at the level matching its size so the
    // doubling invariant (level i <= buffer * 2^i points) keeps holding.
    std::size_t capacity = options_.buffer_capacity;
    while (capacity < batch.size()) {
      capacity *= 2;
      ++target;
    }
    BuildLevel(target, std::move(batch));
  }

  Metric metric_;
  Options options_;
  std::vector<BufferEntry> buffer_;
  std::vector<std::optional<Level>> levels_;
  std::vector<std::uint8_t> state_;  ///< per issued id: live / deleted
  std::size_t live_count_ = 0;
  std::uint64_t construction_distances_ = 0;
};

}  // namespace mvp::dynamic

#endif  // MVPTREE_DYNAMIC_MVP_FOREST_H_

#ifndef MVPTREE_NET_WIRE_H_
#define MVPTREE_NET_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/query.h"
#include "common/serialize.h"
#include "common/status.h"
#include "serve/serve_stats.h"
#include "wal/wal.h"

/// \file
/// Wire protocol for the mvpt network serving subsystem — framing plus
/// message codecs. docs/network_serving.md has the byte-level spec.
///
/// Framing reuses the WAL/snapshot discipline: every frame is
///
///   [u32 magic "MVPR"] [u32 payload length] [u32 CRC32C(payload)] payload
///
/// all little-endian. The receiver validates the magic and bounds the
/// length BEFORE allocating (an adversarial length prefix fails as
/// InvalidArgument, never a multi-gigabyte resize), then verifies the CRC
/// before a single payload byte is parsed — a bit-flipped frame is
/// Corruption, not a crash three layers up. tests/net_frame_test.cc sweeps
/// truncations, flips and oversized lengths over this layer.
///
/// Message payloads are BinaryWriter/BinaryReader streams. A request is
/// `[u32 op] body`; every response starts `[u32 status code] [string
/// message]` with the body present only on OK — so an error produced
/// anywhere server-side travels to the client as the same Status it was,
/// code and message intact (docs/serving.md tabulates the mapping).
///
/// All socket I/O goes through the fault::net seam, so every protocol test
/// can inject disconnects, short sends and crashes at exact syscalls.

namespace mvp::net {

/// Frame header: magic + payload length + payload CRC32C.
inline constexpr std::uint32_t kFrameMagic = 0x5250564D;  // "MVPR"
inline constexpr std::size_t kFrameHeaderBytes = 12;
/// Default ceiling on a single frame's payload. Large enough for any
/// response the server produces at default chunk sizes, small enough that
/// an adversarial length cannot balloon memory.
inline constexpr std::size_t kMaxFramePayload = std::size_t{64} << 20;

/// RPC operations. Values are wire format — append only.
enum class Op : std::uint32_t {
  kPing = 1,
  kListCollections = 2,
  kQuery = 3,
  kBatchQuery = 4,
  kStats = 5,
  kCurrentGeneration = 6,
  kFetchManifest = 7,
  kFetchChunk = 8,
  /// WAL shipping: the leader's log records past a sequence number, so a
  /// follower can tail a live dynamic collection (net/server.h).
  kFetchWalSince = 9,
  /// Health/readiness probe: serving-vs-draining plus generation lag, so a
  /// failover client can skip an endpoint that is shutting down or behind.
  kReadiness = 10,
};

/// `timeout_ns` value meaning "no deadline".
inline constexpr std::uint64_t kNoTimeout = ~std::uint64_t{0};

/// One query as it travels the wire (vector datasets).
struct WireQuery {
  std::uint8_t kind = 0;  ///< 0 = range, 1 = k-NN
  double radius = 0.0;
  std::uint64_t k = 0;
  std::uint64_t timeout_ns = kNoTimeout;
  std::uint64_t max_distance_computations = 0;
  std::vector<double> point;
};

/// One query outcome as it travels the wire: the QueryOutcome fields plus
/// the full per-query SearchStats, so degradation telemetry survives the
/// network hop bit for bit.
struct WireOutcome {
  std::uint32_t status_code = 0;
  std::string status_message;
  bool partial = false;
  std::uint64_t latency_ns = 0;
  std::uint64_t distance_computations = 0;
  SearchStats search;
  std::vector<Neighbor> neighbors;

  Status status() const {
    return status_code == 0
               ? Status::OK()
               : Status(static_cast<StatusCode>(status_code), status_message);
  }
};

/// One collection's listing entry.
struct WireCollectionInfo {
  std::string name;
  std::string metric;
  bool dynamic = false;
  std::uint64_t generation = 0;  ///< serving generation (0 = none yet)
  std::uint64_t size = 0;        ///< objects currently servable
};

/// A slice of the leader's WAL, as returned by FetchWalSince: every record
/// with seq > the requested watermark, plus the lineage facts the follower
/// needs to decide between tailing and falling back to chunk replication.
struct WireWalSegment {
  /// The leader's current epoch; a follower rejects segments from an epoch
  /// older than the newest it has ever accepted (split-brain fencing).
  std::uint64_t leader_epoch = 0;
  /// The checkpoint watermark: records at or below it live only in
  /// committed generations now. A follower whose applied seq is below this
  /// cannot catch up by tailing — it must pull generations first.
  std::uint64_t floor_seq = 0;
  /// The leader's committed generation at the time of the read.
  std::uint64_t generation = 0;
  /// The leader's last acknowledged sequence (the tail target).
  std::uint64_t applied_seq = 0;
  std::vector<wal::WalRecord> records;
};

/// Readiness states a server reports (wire values — append only).
enum class ReadinessState : std::uint8_t {
  kServing = 0,
  kDraining = 1,
};

/// Health/readiness snapshot, as returned by the Readiness RPC.
struct WireReadiness {
  std::uint8_t state = 0;  ///< a ReadinessState value
  /// Max epoch across the server's collections (0 = epoch-less store).
  std::uint64_t leader_epoch = 0;
  /// Generations the server knows it trails its leader by (followers; 0
  /// when leading or caught up).
  std::uint64_t generation_lag = 0;
};

// ---- framing ---------------------------------------------------------------

/// Sends one frame (header + payload), looping over fault::net::Send until
/// every byte is out. `detail` labels the connection for failpoints.
Status SendFrame(int fd, const std::uint8_t* payload, std::size_t size,
                 const char* detail);
inline Status SendFrame(int fd, const std::vector<std::uint8_t>& payload,
                        const char* detail) {
  return SendFrame(fd, payload.data(), payload.size(), detail);
}

/// Receives one frame's payload. Validates magic and length bounds before
/// allocating, then the CRC before returning. Error taxonomy:
///  * NotFound         — the peer closed the connection cleanly between
///                       frames (EOF at header byte 0); the quiet end of a
///                       conversation, not an error.
///  * IOError          — the connection died mid-frame (EOF or socket error
///                       with bytes outstanding).
///  * InvalidArgument  — length exceeds `max_payload` (adversarial or
///                       misconfigured peer; nothing was allocated).
///  * Corruption       — bad magic or CRC mismatch.
Result<std::vector<std::uint8_t>> RecvFrame(
    int fd, const char* detail, std::size_t max_payload = kMaxFramePayload);

// ---- message codecs --------------------------------------------------------

void EncodeQuery(const WireQuery& query, BinaryWriter* out);
Status DecodeQuery(BinaryReader* in, WireQuery* query);

void EncodeOutcome(const WireOutcome& outcome, BinaryWriter* out);
Status DecodeOutcome(BinaryReader* in, WireOutcome* outcome);

void EncodeStats(const serve::ServeStatsSnapshot& snap, BinaryWriter* out);
Status DecodeStats(BinaryReader* in, serve::ServeStatsSnapshot* snap);

void EncodeCollectionInfo(const WireCollectionInfo& info, BinaryWriter* out);
Status DecodeCollectionInfo(BinaryReader* in, WireCollectionInfo* info);

void EncodeWalSegment(const WireWalSegment& segment, BinaryWriter* out);
Status DecodeWalSegment(BinaryReader* in, WireWalSegment* segment);

void EncodeReadiness(const WireReadiness& readiness, BinaryWriter* out);
Status DecodeReadiness(BinaryReader* in, WireReadiness* readiness);

/// Response header: `[u32 code] [string message]`. The encoded code is
/// validated against the known StatusCode range on decode — a frame whose
/// code is out of range is Corruption, not an invented enum value.
void EncodeResponseStatus(const Status& status, BinaryWriter* out);
Status DecodeResponseStatus(BinaryReader* in, Status* status);

}  // namespace mvp::net

#endif  // MVPTREE_NET_WIRE_H_

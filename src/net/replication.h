#ifndef MVPTREE_NET_REPLICATION_H_
#define MVPTREE_NET_REPLICATION_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "fault/fault_fs.h"  // platform gate: defines MVPTREE_FAULT_FS_POSIX
#include "net/client.h"

/// \file
/// Chunk-level snapshot replication: a follower mirrors a leader
/// collection's committed generation by pulling raw bytes — the manifest
/// verbatim, the container in bounded FetchChunk slices — and committing
/// them through the same WriteFileAtomic / CURRENT-last discipline the
/// snapshot store itself uses. The follower never rebuilds anything: after
/// a pull, its store is byte-identical to the leader's generation, so
/// OpenFlat/LoadSharded serve bit-identical results and SearchStats.
///
/// The pull is **resumable** (the container lands in a `.partial` file
/// opened in append mode; a re-run resumes from its size) and
/// **fingerprint-verified**: the whole container's ContainerFingerprint
/// must match the manifest before the partial is renamed into place, and
/// CURRENT — the only commit point — is written last. A follower killed at
/// any syscall (every one goes through fault::fs / fault::net, so the
/// failpoint drills apply) either resumes the pull or restarts it; it can
/// never serve an unverified generation, because nothing unverified is
/// ever named by CURRENT.
///
/// Delta lineages replicate transitively: a generation whose manifest
/// names a base_generation pulls the base first (bottom-up), so the
/// follower's store always satisfies the lineage invariants the load path
/// checks.

#if defined(MVPTREE_FAULT_FS_POSIX) || defined(MVPTREE_DOXYGEN)

namespace mvp::net {

struct ReplicationOptions {
  /// FetchChunk slice size. The server caps requests at 8 MiB; smaller
  /// slices give finer resume granularity at more round trips.
  std::uint64_t chunk_bytes = std::uint64_t{256} << 10;
};

/// One replication pass: makes `dest_dir` serve the leader's committed
/// generation of `collection`. Returns the generation now committed
/// locally (which may have been current already — the pass is idempotent).
/// On Corruption (a pulled container failing its fingerprint) the partial
/// is discarded and the local store is untouched.
Result<std::uint64_t> PullGeneration(Client& client,
                                     const std::string& collection,
                                     const std::string& dest_dir,
                                     const ReplicationOptions& options = {});

}  // namespace mvp::net

#endif  // MVPTREE_FAULT_FS_POSIX

#endif  // MVPTREE_NET_REPLICATION_H_

#include "net/replication.h"

#include "fault/fault_net.h"  // platform gate: defines MVPTREE_FAULT_FS_POSIX

#if defined(MVPTREE_FAULT_FS_POSIX)

#include <fcntl.h>
#include <sys/stat.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <utility>
#include <vector>

#include "common/serialize.h"
#include "fault/fault_fs.h"
#include "snapshot/manifest.h"
#include "snapshot/mmap_file.h"
#include "snapshot/snapshot_store.h"

namespace mvp::net {
namespace {

/// Closes the wrapped fd on unwind — fault::fs calls can throw CrashError
/// mid-pull, and the drill reruns the pull in the same process.
class FdCloser {
 public:
  FdCloser(int fd, const char* path) : fd_(fd), path_(path) {}
  ~FdCloser() {
    if (fd_ >= 0) (void)fault::fs::Close(fd_, path_);
  }
  void Disarm() { fd_ = -1; }

 private:
  int fd_;
  const char* path_;
};

std::string BaseName(const std::string& path) {
  const std::size_t slash = path.rfind('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

/// True when generation `gen` is fully materialized locally: its manifest
/// parses and its container matches the manifest fingerprint byte for
/// byte. The full checksum makes resume decisions trustworthy even after
/// a crash that tore the commit mid-way.
bool GenerationComplete(const snapshot::SnapshotStore& store,
                        std::uint64_t gen) {
  auto manifest = store.ReadManifest(gen);
  if (!manifest.ok()) return false;
  auto mapping = snapshot::MmapFile::Open(
      store.GenerationDir(gen) + "/" +
      snapshot::SnapshotStore::kContainerFile);
  if (!mapping.ok()) return false;
  if (mapping.value().size() != manifest.value().payload_bytes) return false;
  return snapshot::ContainerFingerprint(mapping.value().data(),
                                        mapping.value().size()) ==
         manifest.value().dataset_fingerprint;
}

/// Pulls one generation's raw bytes into the local store — everything
/// except the CURRENT commit, which the caller writes once the whole
/// lineage is present.
Status MaterializeGeneration(Client& client, const std::string& collection,
                             const snapshot::SnapshotStore& store,
                             std::uint64_t gen,
                             const std::vector<std::uint8_t>& manifest_bytes,
                             const snapshot::SnapshotManifest& manifest,
                             const ReplicationOptions& options) {
  const std::string gen_dir = store.GenerationDir(gen);
  std::error_code ec;
  std::filesystem::create_directories(gen_dir, ec);
  if (ec) {
    return Status::IOError("cannot create generation dir: " + gen_dir);
  }
  // Manifest first (atomically): a crash leaves a manifest beside a
  // partial container, which GenerationComplete correctly calls
  // incomplete. The manifest travels verbatim — same bytes, same CRC.
  MVP_RETURN_NOT_OK(WriteFileAtomic(
      gen_dir + "/" + snapshot::SnapshotStore::kManifestFile, manifest_bytes));

  const std::string partial =
      gen_dir + "/" + snapshot::SnapshotStore::kContainerFile + ".partial";
  const int fd =
      fault::fs::Open(partial.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) {
    return Status::IOError("cannot open partial container: " + partial);
  }
  FdCloser closer(fd, partial.c_str());
  struct ::stat st {};
  if (fault::fs::Fstat(fd, &st, partial.c_str()) != 0) {
    return Status::IOError("fstat failed: " + partial);
  }
  std::uint64_t offset = static_cast<std::uint64_t>(st.st_size);
  if (offset > manifest.payload_bytes) {
    // A stale partial from some other lineage; restart the pull.
    if (fault::fs::Ftruncate(fd, 0, partial.c_str()) != 0) {
      return Status::IOError("ftruncate failed: " + partial);
    }
    offset = 0;
  }

  while (offset < manifest.payload_bytes) {
    const std::uint64_t want =
        std::min(options.chunk_bytes, manifest.payload_bytes - offset);
    auto bytes = client.FetchChunk(collection, gen, offset, want);
    if (!bytes.ok()) return bytes.status();
    if (bytes.value().size() != want) {
      return Status::IOError("leader returned a short chunk");
    }
    std::size_t written = 0;
    while (written < bytes.value().size()) {
      // EINTR is retried inside the fault::fs seam; negative = real error.
      const long n =
          fault::fs::Write(fd, bytes.value().data() + written,
                           bytes.value().size() - written, partial.c_str());
      if (n < 0) {
        return Status::IOError(std::string("write failed: ") +
                               std::strerror(errno));
      }
      written += static_cast<std::size_t>(n);
    }
    offset += want;
  }
  if (fault::fs::Fsync(fd, partial.c_str()) != 0) {
    return Status::IOError("fsync failed: " + partial);
  }
  closer.Disarm();
  if (fault::fs::Close(fd, partial.c_str()) != 0) {
    return Status::IOError("close failed: " + partial);
  }

  // Verify the WHOLE container against the manifest fingerprint before it
  // can be seen by any load path. A mismatch discards the transfer — a
  // corrupted or torn pull never becomes a servable file.
  auto pulled = ReadFile(partial);
  if (!pulled.ok()) return pulled.status();
  if (snapshot::ContainerFingerprint(pulled.value().data(),
                                     pulled.value().size()) !=
      manifest.dataset_fingerprint) {
    // Corruption is the status to surface; a stuck partial only re-fails
    // the next pull's fingerprint check.
    (void)fault::fs::Remove(partial.c_str());
    return Status::Corruption(
        "replicated container fails the manifest fingerprint; transfer "
        "discarded");
  }
  const std::string container =
      gen_dir + "/" + snapshot::SnapshotStore::kContainerFile;
  if (fault::fs::Rename(partial.c_str(), container.c_str()) != 0) {
    return Status::IOError("rename failed: " + container);
  }
  return Status::OK();
}

}  // namespace

Result<std::uint64_t> PullGeneration(Client& client,
                                     const std::string& collection,
                                     const std::string& dest_dir,
                                     const ReplicationOptions& options) {
  auto remote = client.CurrentGeneration(collection);
  if (!remote.ok()) return remote.status();
  snapshot::SnapshotStore store(dest_dir);

  auto local = store.CurrentGeneration();
  if (local.ok() && local.value() == remote.value() &&
      GenerationComplete(store, remote.value())) {
    return remote.value();  // already serving the leader's generation
  }

  // Epoch fence before any bytes land: a deposed leader still answers
  // RPCs, but its head manifest carries the epoch it was deposed at, which
  // is below what this store has already accepted from the new leader.
  auto head_bytes = client.FetchManifest(collection, remote.value());
  if (!head_bytes.ok()) return head_bytes.status();
  auto head = snapshot::SnapshotManifest::Parse(head_bytes.value());
  if (!head.ok()) return head.status();
  const std::uint64_t local_epoch = store.ReadEpoch();
  if (head.value().leader_epoch < local_epoch) {
    return Status::InvalidArgument(
        "stale leader epoch " + std::to_string(head.value().leader_epoch) +
        " (locally accepted epoch " + std::to_string(local_epoch) + ")");
  }
  if (head.value().leader_epoch > local_epoch) {
    MVP_RETURN_NOT_OK(store.WriteEpoch(head.value().leader_epoch));
  }

  // Walk the lineage leader-side, newest first, until a generation we
  // already hold: a delta generation is only loadable with its base.
  struct PendingGeneration {
    std::uint64_t gen;
    std::vector<std::uint8_t> manifest_bytes;
    snapshot::SnapshotManifest manifest;
  };
  std::vector<PendingGeneration> chain;
  std::uint64_t gen = remote.value();
  while (gen != 0 && !GenerationComplete(store, gen)) {
    auto manifest_bytes = client.FetchManifest(collection, gen);
    if (!manifest_bytes.ok()) return manifest_bytes.status();
    auto manifest = snapshot::SnapshotManifest::Parse(manifest_bytes.value());
    if (!manifest.ok()) return manifest.status();
    const std::uint64_t base = manifest.value().base_generation;
    if (base >= gen) {
      return Status::Corruption("leader lineage does not descend");
    }
    chain.push_back({gen, std::move(manifest_bytes).ValueOrDie(),
                     std::move(manifest).ValueOrDie()});
    gen = base;
  }

  // Materialize bottom-up so every base exists before anything above it.
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    MVP_RETURN_NOT_OK(MaterializeGeneration(client, collection, store,
                                            it->gen, it->manifest_bytes,
                                            it->manifest, options));
  }

  // The one and only commit point: CURRENT, atomically, last. Everything
  // above was verified; a crash anywhere before this line leaves the
  // previous generation serving.
  const std::string name = BaseName(store.GenerationDir(remote.value())) +
                           std::string("\n");
  MVP_RETURN_NOT_OK(
      WriteFileAtomic(dest_dir + "/" + snapshot::SnapshotStore::kCurrentFile,
                      std::vector<std::uint8_t>(name.begin(), name.end())));
  return remote.value();
}

}  // namespace mvp::net

#endif  // MVPTREE_FAULT_FS_POSIX

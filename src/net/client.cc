#include "net/client.h"

#include "fault/fault_net.h"  // platform gate: defines MVPTREE_FAULT_FS_POSIX

#if defined(MVPTREE_FAULT_FS_POSIX)

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace mvp::net {

Result<Client> Client::Connect(const std::string& host, std::uint16_t port) {
  return Connect(host, port, 0);
}

Result<Client> Client::Connect(const std::string& host, std::uint16_t port,
                               std::uint64_t timeout_ns) {
  struct ::in_addr addr4 {};
  const std::string numeric = host == "localhost" ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, numeric.c_str(), &addr4) != 1) {
    return Status::InvalidArgument("host must be an IPv4 address: " + host);
  }
  const int fd = fault::net::Socket(AF_INET, SOCK_STREAM, 0, "client:connect");
  if (fd < 0) {
    return Status::IOError(std::string("socket failed: ") +
                           std::strerror(errno));
  }
  if (timeout_ns != 0) {
    // SO_RCVTIMEO/SO_SNDTIMEO turn every blocking recv/send on this socket
    // into a bounded wait (EAGAIN on expiry), which RecvExact/SendExact
    // surface as an IOError — the failover client's per-attempt timeout.
    // Best-effort like the other options: a socket without them still
    // works, it just blocks indefinitely on a wedged peer.
    struct ::timeval tv {};
    tv.tv_sec = static_cast<long>(timeout_ns / 1000000000ull);
    tv.tv_usec =
        static_cast<long>((timeout_ns % 1000000000ull) / 1000ull);
    if (tv.tv_sec == 0 && tv.tv_usec == 0) tv.tv_usec = 1;  // 0 = forever
    // Best-effort: a socket without the recv timeout still works.
    (void)fault::net::SetSockOpt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv,
                                 sizeof(tv));
    // Best-effort: same for the send timeout.
    (void)fault::net::SetSockOpt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv,
                                 sizeof(tv));
  }
  struct ::sockaddr_in addr {};
  addr.sin_family = AF_INET;
  addr.sin_addr = addr4;
  addr.sin_port = htons(port);
  if (fault::net::Connect(fd, reinterpret_cast<const struct ::sockaddr*>(&addr),
                          sizeof(addr), "client:connect") != 0) {
    const Status status = Status::IOError(std::string("connect failed: ") +
                                          std::strerror(errno));
    // Already propagating the connect failure; nothing to add from close.
    (void)fault::net::CloseSocket(fd, "client:connect");
    return status;
  }
  // Frames go out as two small writes (header, payload); without NODELAY
  // Nagle holds the second until the first is acked, turning every RPC
  // into a delayed-ack round trip (~40ms). Best-effort: a socket without
  // the option still works, just slower.
  const int one = 1;
  // Best-effort (see above): without the option the socket is slow, not wrong.
  (void)fault::net::SetSockOpt(fd, IPPROTO_TCP, TCP_NODELAY, &one,
                               sizeof(one));
  Client client;
  client.fd_ = fd;
  return client;
}

void Client::Close() {
  if (fd_ >= 0) {
    // Close() has no error channel; a failed close leaks nothing we reuse.
    (void)fault::net::CloseSocket(fd_, "client:close");
    fd_ = -1;
  }
}

Result<std::vector<std::uint8_t>> Client::RoundTrip(
    const BinaryWriter& request, std::size_t* body_offset) {
  if (fd_ < 0) return Status::InvalidArgument("client is not connected");
  const Status sent = SendFrame(fd_, request.buffer(), "client:rpc");
  if (!sent.ok()) {
    // A refused connection (e.g. over the server's cap) surfaces here as a
    // broken pipe: the server wrote one parting status frame and closed.
    // Read that verdict if it ALREADY arrived — it names the real reason —
    // but never block for it: a send that merely faulted mid-conversation
    // has no response in flight, and a blocking read here would hang.
    struct ::pollfd pfd {};
    pfd.fd = fd_;
    pfd.events = POLLIN;
    if (::poll(&pfd, 1, 0) > 0 && (pfd.revents & (POLLIN | POLLHUP)) != 0) {
      auto parting = RecvFrame(fd_, "client:rpc");
      if (parting.ok()) {
        BinaryReader reader(parting.value());
        Status server_status;
        if (DecodeResponseStatus(&reader, &server_status).ok() &&
            !server_status.ok()) {
          return server_status;
        }
      }
    }
    return sent;
  }
  auto response = RecvFrame(fd_, "client:rpc");
  if (!response.ok()) {
    // A server that hangs up instead of answering is a broken conversation
    // from the caller's point of view, whatever the framing layer called it.
    if (response.status().code() == StatusCode::kNotFound) {
      return Status::IOError("server closed the connection mid-rpc");
    }
    return response.status();
  }
  BinaryReader reader(response.value());
  Status server_status;
  MVP_RETURN_NOT_OK(DecodeResponseStatus(&reader, &server_status));
  MVP_RETURN_NOT_OK(server_status);
  *body_offset = reader.position();
  return std::move(response).ValueOrDie();
}

Status Client::Ping() {
  BinaryWriter request;
  request.Write<std::uint32_t>(static_cast<std::uint32_t>(Op::kPing));
  std::size_t body = 0;
  auto response = RoundTrip(request, &body);
  if (!response.ok()) return response.status();
  BinaryReader reader(response.value().data() + body,
                      response.value().size() - body);
  std::string banner;
  MVP_RETURN_NOT_OK(reader.ReadString(&banner));
  std::uint32_t version = 0;
  MVP_RETURN_NOT_OK(reader.Read<std::uint32_t>(&version));
  if (version != 1) {
    return Status::NotSupported("server speaks protocol version " +
                                std::to_string(version));
  }
  return Status::OK();
}

Result<std::vector<WireCollectionInfo>> Client::ListCollections() {
  BinaryWriter request;
  request.Write<std::uint32_t>(
      static_cast<std::uint32_t>(Op::kListCollections));
  std::size_t body = 0;
  auto response = RoundTrip(request, &body);
  if (!response.ok()) return response.status();
  BinaryReader reader(response.value().data() + body,
                      response.value().size() - body);
  // Every encoded WireCollectionInfo is at least 33 bytes (two u64 string
  // length prefixes, one u8 flag, two u64 counters), so a count the payload
  // cannot possibly hold is rejected before the reserve below allocates.
  std::uint64_t count = 0;
  MVP_RETURN_NOT_OK(reader.ReadLengthPrefix(8 + 8 + 1 + 8 + 8, &count));
  std::vector<WireCollectionInfo> collections;
  collections.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    WireCollectionInfo info;
    MVP_RETURN_NOT_OK(DecodeCollectionInfo(&reader, &info));
    collections.push_back(std::move(info));
  }
  return collections;
}

Result<WireOutcome> Client::Query(const std::string& collection,
                                  const WireQuery& query) {
  BinaryWriter request;
  request.Write<std::uint32_t>(static_cast<std::uint32_t>(Op::kQuery));
  request.WriteString(collection);
  EncodeQuery(query, &request);
  std::size_t body = 0;
  auto response = RoundTrip(request, &body);
  if (!response.ok()) return response.status();
  BinaryReader reader(response.value().data() + body,
                      response.value().size() - body);
  WireOutcome outcome;
  MVP_RETURN_NOT_OK(DecodeOutcome(&reader, &outcome));
  return outcome;
}

Result<std::vector<WireOutcome>> Client::BatchQuery(
    const std::string& collection, const std::vector<WireQuery>& queries) {
  BinaryWriter request;
  request.Write<std::uint32_t>(static_cast<std::uint32_t>(Op::kBatchQuery));
  request.WriteString(collection);
  request.Write<std::uint64_t>(queries.size());
  for (const WireQuery& query : queries) EncodeQuery(query, &request);
  std::size_t body = 0;
  auto response = RoundTrip(request, &body);
  if (!response.ok()) return response.status();
  BinaryReader header(response.value().data() + body,
                      response.value().size() - body);
  std::uint64_t count = 0;
  MVP_RETURN_NOT_OK(header.Read<std::uint64_t>(&count));
  if (count != queries.size()) {
    return Status::Corruption("batch response count mismatches the request");
  }
  std::vector<WireOutcome> outcomes;
  outcomes.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    auto frame = RecvFrame(fd_, "client:rpc");
    if (!frame.ok()) {
      if (frame.status().code() == StatusCode::kNotFound) {
        return Status::IOError("server closed the connection mid-batch");
      }
      return frame.status();
    }
    BinaryReader reader(frame.value());
    WireOutcome outcome;
    MVP_RETURN_NOT_OK(DecodeOutcome(&reader, &outcome));
    outcomes.push_back(std::move(outcome));
  }
  return outcomes;
}

Result<serve::ServeStatsSnapshot> Client::Stats(const std::string& collection) {
  BinaryWriter request;
  request.Write<std::uint32_t>(static_cast<std::uint32_t>(Op::kStats));
  request.WriteString(collection);
  std::size_t body = 0;
  auto response = RoundTrip(request, &body);
  if (!response.ok()) return response.status();
  BinaryReader reader(response.value().data() + body,
                      response.value().size() - body);
  serve::ServeStatsSnapshot snapshot;
  MVP_RETURN_NOT_OK(DecodeStats(&reader, &snapshot));
  return snapshot;
}

Result<std::uint64_t> Client::CurrentGeneration(const std::string& collection) {
  BinaryWriter request;
  request.Write<std::uint32_t>(
      static_cast<std::uint32_t>(Op::kCurrentGeneration));
  request.WriteString(collection);
  std::size_t body = 0;
  auto response = RoundTrip(request, &body);
  if (!response.ok()) return response.status();
  BinaryReader reader(response.value().data() + body,
                      response.value().size() - body);
  std::uint64_t generation = 0;
  MVP_RETURN_NOT_OK(reader.Read<std::uint64_t>(&generation));
  return generation;
}

Result<std::vector<std::uint8_t>> Client::FetchManifest(
    const std::string& collection, std::uint64_t gen) {
  BinaryWriter request;
  request.Write<std::uint32_t>(static_cast<std::uint32_t>(Op::kFetchManifest));
  request.WriteString(collection);
  request.Write<std::uint64_t>(gen);
  std::size_t body = 0;
  auto response = RoundTrip(request, &body);
  if (!response.ok()) return response.status();
  BinaryReader reader(response.value().data() + body,
                      response.value().size() - body);
  std::vector<std::uint8_t> bytes;
  MVP_RETURN_NOT_OK(reader.ReadVector(&bytes));
  return bytes;
}

Result<std::vector<std::uint8_t>> Client::FetchChunk(
    const std::string& collection, std::uint64_t gen, std::uint64_t offset,
    std::uint64_t length) {
  BinaryWriter request;
  request.Write<std::uint32_t>(static_cast<std::uint32_t>(Op::kFetchChunk));
  request.WriteString(collection);
  request.Write<std::uint64_t>(gen);
  request.Write<std::uint64_t>(offset);
  request.Write<std::uint64_t>(length);
  std::size_t body = 0;
  auto response = RoundTrip(request, &body);
  if (!response.ok()) return response.status();
  BinaryReader reader(response.value().data() + body,
                      response.value().size() - body);
  std::vector<std::uint8_t> bytes;
  MVP_RETURN_NOT_OK(reader.ReadVector(&bytes));
  return bytes;
}

Result<WireWalSegment> Client::FetchWalSince(const std::string& collection,
                                             std::uint64_t since) {
  BinaryWriter request;
  request.Write<std::uint32_t>(
      static_cast<std::uint32_t>(Op::kFetchWalSince));
  request.WriteString(collection);
  request.Write<std::uint64_t>(since);
  std::size_t body = 0;
  auto response = RoundTrip(request, &body);
  if (!response.ok()) return response.status();
  BinaryReader reader(response.value().data() + body,
                      response.value().size() - body);
  WireWalSegment segment;
  MVP_RETURN_NOT_OK(DecodeWalSegment(&reader, &segment));
  return segment;
}

Result<WireReadiness> Client::Readiness(const std::string& collection) {
  BinaryWriter request;
  request.Write<std::uint32_t>(static_cast<std::uint32_t>(Op::kReadiness));
  request.WriteString(collection);
  std::size_t body = 0;
  auto response = RoundTrip(request, &body);
  if (!response.ok()) return response.status();
  BinaryReader reader(response.value().data() + body,
                      response.value().size() - body);
  WireReadiness readiness;
  MVP_RETURN_NOT_OK(DecodeReadiness(&reader, &readiness));
  return readiness;
}

}  // namespace mvp::net

#endif  // MVPTREE_FAULT_FS_POSIX

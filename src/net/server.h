#ifndef MVPTREE_NET_SERVER_H_
#define MVPTREE_NET_SERVER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "fault/fault_fs.h"  // platform gate: defines MVPTREE_FAULT_FS_POSIX
#include "serve/admission.h"

/// \file
/// mvpt-server: a multi-tenant network front end for the serving layer.
///
/// A Server hosts named **collections**, each an independent tenant with
/// its own snapshot directory, metric, admission budget, and deadline cap.
/// Static collections serve a committed snapshot generation through a
/// GenerationCell (hot-swappable via Refresh — the replication path's
/// publish point); dynamic collections serve a live DynamicOverlay whose
/// WAL/memtable mutations are visible to queries immediately.
///
/// Every query — single or streaming batch — flows through the same
/// serve::RunBatch executor an in-process caller would use, so deadlines,
/// admission control, cooperative cancellation, partial-result
/// degradation, and ServeStats accounting all apply unchanged over the
/// wire. The per-collection `max_timeout` clamps whatever deadline the
/// client asked for, making the deadline a server-side tenant policy, not
/// a client courtesy.
///
/// The wire protocol (net/wire.h) is length-prefixed CRC-framed request/
/// response; replication RPCs (CurrentGeneration / FetchManifest /
/// FetchChunk) serve raw snapshot bytes so a follower can mirror a
/// generation it has never built (net/replication.h).
///
/// Connection model: one thread per accepted connection, requests handled
/// strictly in order per connection. Stop() shuts down every live socket
/// and joins all threads; destruction implies Stop(). The server binds
/// 127.0.0.1 only — it is a building block for serving experiments, not a
/// hardened public endpoint.
///
/// All socket syscalls go through the fault::net seam and all file I/O
/// through fault::fs, so the existing failpoint drills (torn frames, torn
/// replication pulls, crashed connections) apply to the network layer.

#if defined(MVPTREE_FAULT_FS_POSIX) || defined(MVPTREE_DOXYGEN)

namespace mvp::net {

/// One tenant's configuration.
struct CollectionOptions {
  /// Collection name as addressed by clients. Must be unique and non-empty.
  std::string name;
  /// Snapshot store directory (static) or overlay directory (dynamic).
  std::string dir;
  /// Metric name: "l1", "l2", or "linf".
  std::string metric = "l2";
  /// Serve a live DynamicOverlay instead of a static snapshot generation.
  bool dynamic = false;
  /// Per-tenant deadline cap in nanoseconds: every query's timeout is
  /// clamped to this, whatever the client asked for. Default: no cap.
  std::uint64_t max_timeout_ns = ~std::uint64_t{0};
  /// Per-tenant admission budget (load shedding at the executor layer).
  serve::AdmissionController::Options admission;
};

struct ServerOptions {
  /// TCP port to listen on (loopback only). 0 picks an ephemeral port;
  /// read the real one back with Server::port().
  std::uint16_t port = 0;
  /// Worker threads in the shared query pool (0 = hardware concurrency).
  std::size_t threads = 0;
  /// Ceiling on concurrently served connections. An accept beyond the cap
  /// is answered with one ResourceExhausted frame and closed — a clean,
  /// parseable refusal instead of an unexplained hangup or an unbounded
  /// thread count.
  std::size_t max_connections = 256;
  /// The tenants to host. A static collection whose store is still empty
  /// is served as NotFound until a generation is committed and Refresh'd
  /// in — the follower-before-first-replication state.
  std::vector<CollectionOptions> collections;
};

class Client;

/// A running server. Start() binds + listens + spawns the accept loop;
/// the instance is immovable (threads hold `this`).
class Server {
 public:
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Opens every collection, binds 127.0.0.1:port, and starts accepting.
  static Result<std::unique_ptr<Server>> Start(ServerOptions options);

  /// The port actually bound (== options.port unless that was 0).
  std::uint16_t port() const;

  /// Reloads `collection` from its snapshot store and hot-swaps it into
  /// serving (GenerationCell publish). In-flight queries finish on the old
  /// generation. No-op for dynamic collections (they are always live).
  Status Refresh(const std::string& collection);

  // In-process mutation/lifecycle surface for dynamic collections (the
  // wire protocol is read-only; a leader's writers are co-located with it).
  // All of these are InvalidArgument on a static collection.

  /// Durably inserts into a dynamic collection; returns the stable id.
  Result<std::uint64_t> Insert(const std::string& collection,
                               const std::vector<double>& point);
  /// Durably erases a stable id from a dynamic collection.
  Status Erase(const std::string& collection, std::uint64_t stable_id);
  /// Folds outstanding mutations into a delta generation (WAL truncate).
  Result<std::uint64_t> Checkpoint(const std::string& collection);
  /// Major merge into one full generation (the WAL-shipping floor moves).
  Result<std::uint64_t> Compact(const std::string& collection);

  /// Promotes this server to leadership of `collection`: bumps the store's
  /// persisted leader epoch and returns the new value. Every generation
  /// committed and WAL segment shipped from now on carries the new epoch,
  /// which is what fences out a deposed leader's stale stream
  /// (docs/network_serving.md).
  Result<std::uint64_t> Promote(const std::string& collection);

  /// One follower convergence step for a dynamic collection: ships the
  /// leader's WAL tail past the local applied sequence (Op::kFetchWalSince)
  /// and applies it; when the local cursor has fallen below the leader's
  /// WAL floor (a checkpoint/compaction truncated the records away), falls
  /// back to pulling the generation lineage and resumes tailing from its
  /// watermark. Rejects segments stamped with a stale leader epoch and
  /// adopts newer ones. Returns once the local state has caught up to the
  /// leader sequence observed at entry.
  Status Follow(const std::string& collection, Client& leader);

  /// Whether this server is draining (Readiness reports it on the wire).
  bool draining() const;

  /// Graceful shutdown: stops accepting, answers Readiness as draining,
  /// refuses NEW queries with ResourceExhausted, waits up to `deadline_ns`
  /// for in-flight requests to finish, then Stop()s. Connections are never
  /// hard-closed mid-response, so a client draining alongside sees a clean
  /// refusal it can fail over on, not a torn frame.
  void Drain(std::uint64_t deadline_ns);

  /// Shuts down the listener and every live connection, then joins all
  /// threads. Idempotent; implied by destruction.
  void Stop();

 private:
  class Impl;
  explicit Server(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

}  // namespace mvp::net

#endif  // MVPTREE_FAULT_FS_POSIX

#endif  // MVPTREE_NET_SERVER_H_

#ifndef MVPTREE_NET_FAILOVER_H_
#define MVPTREE_NET_FAILOVER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "fault/fault_fs.h"  // platform gate: defines MVPTREE_FAULT_FS_POSIX
#include "fault/retry.h"
#include "net/client.h"
#include "net/wire.h"

/// \file
/// Client-side failover over an ordered endpoint list
/// (docs/network_serving.md).
///
/// A FailoverClient holds the addresses of every replica serving a
/// collection — leader first by convention, though nothing depends on it —
/// and keeps exactly one live Client underneath. Each RPC runs against the
/// current connection; a CONVERSATION failure (connect refused, torn
/// frame, I/O timeout, a draining or connection-capped refusal) drops the
/// connection, advances to the next endpoint, and retries under one
/// RetryWithBackoff schedule. A SERVER-LEVEL verdict (NotFound, a query's
/// own DeadlineExceeded) is returned as-is: every replica would answer the
/// same, so failing over would only mask the real answer.
///
/// Endpoint selection probes health before trusting a socket: a candidate
/// must answer Ping and report Readiness != draining to become the active
/// connection, so a gracefully draining server sheds this client to its
/// peer without ever surfacing an error. Hedged reads (optional) race the
/// query on the next healthy endpoint after a configurable delay and take
/// whichever answers first — queries are idempotent, so the losing answer
/// is simply discarded.

#if defined(MVPTREE_FAULT_FS_POSIX) || defined(MVPTREE_DOXYGEN)

namespace mvp::net {

struct Endpoint {
  std::string host;
  std::uint16_t port = 0;
};

struct FailoverOptions {
  /// Per-attempt socket I/O timeout (SO_RCVTIMEO/SO_SNDTIMEO); 0 blocks
  /// forever. Bounds how long one dead endpoint can stall a failover.
  std::uint64_t attempt_timeout_ns = 2'000'000'000;
  /// Backoff schedule across full endpoint sweeps: attempt 1 tries every
  /// endpoint once; each further attempt re-sweeps after a backoff sleep.
  fault::RetryOptions retry;
  /// Race idempotent single queries on a second healthy endpoint when the
  /// first answer is slow in coming.
  bool hedged_reads = false;
  /// How long the primary attempt runs alone before the hedge launches.
  std::uint64_t hedge_delay_ns = 50'000'000;
};

/// A failover-aware client: same RPC surface as Client for the read-side
/// calls, plus endpoint management. Not thread-safe (like Client).
class FailoverClient {
 public:
  explicit FailoverClient(std::vector<Endpoint> endpoints,
                          FailoverOptions options = {});

  /// Runs one query, failing over across endpoints as needed. With
  /// hedged_reads, a slow primary is raced by the next healthy endpoint.
  Result<WireOutcome> Query(const std::string& collection,
                            const WireQuery& query);

  /// Runs a batch in one round trip on the active endpoint; a mid-batch
  /// connection loss re-runs the WHOLE batch on the next endpoint (batch
  /// queries are idempotent reads, so a re-run is safe).
  Result<std::vector<WireOutcome>> BatchQuery(
      const std::string& collection, const std::vector<WireQuery>& queries);

  /// Readiness of the active endpoint (connecting first if needed).
  Result<WireReadiness> Readiness(const std::string& collection);

  /// Collection listing from the active endpoint.
  Result<std::vector<WireCollectionInfo>> ListCollections();

  /// Index of the endpoint currently connected (or last used);
  /// tests assert failover happened by watching it move.
  std::size_t active_endpoint() const { return active_; }

  /// Connection establishments that replaced a previously live connection —
  /// i.e. actual failovers, not the first connect.
  std::uint64_t failovers() const { return failovers_; }

  void Close();

 private:
  /// Ensures a live, healthy connection, probing endpoints round-robin
  /// from the current one. `exclude` (size_t(-1) = none) skips one index —
  /// the hedge uses it to land on a different endpoint than the primary.
  Status EnsureConnected(std::size_t exclude);

  /// One full sweep: try every endpoint once. OK leaves client_ connected.
  Status ConnectSweep(std::size_t exclude);

  /// True when `status` means "this endpoint is unusable, try another"
  /// rather than "this is the answer".
  static bool ShouldFailover(const Status& status);

  template <typename Fn>
  auto WithFailover(Fn&& fn) -> decltype(fn());

  std::vector<Endpoint> endpoints_;
  FailoverOptions options_;
  Client client_;
  bool ever_connected_ = false;
  std::size_t active_ = 0;
  std::uint64_t failovers_ = 0;
};

}  // namespace mvp::net

#endif  // MVPTREE_FAULT_FS_POSIX

#endif  // MVPTREE_NET_FAILOVER_H_

#include "net/wire.h"

#include "fault/fault_net.h"  // platform gate: defines MVPTREE_FAULT_FS_POSIX

#if defined(MVPTREE_FAULT_FS_POSIX)

#include <cerrno>
#include <cstring>

#include "common/crc32c.h"

namespace mvp::net {
namespace {

/// Receives exactly `size` bytes. `*eof_at_start` reports a clean EOF
/// before the first byte arrived (only meaningful on failure).
Status RecvExact(int fd, std::uint8_t* buf, std::size_t size,
                 const char* detail, bool* eof_at_start) {
  std::size_t got = 0;
  while (got < size) {
    // EINTR is retried inside the fault::net seam; a negative return here
    // is a real socket error.
    const long n = fault::net::Recv(fd, buf + got, size - got, detail);
    if (n == 0) {
      if (eof_at_start != nullptr) *eof_at_start = got == 0;
      return got == 0 ? Status::IOError("connection closed")
                      : Status::IOError("connection closed mid-frame");
    }
    if (n < 0) {
      return Status::IOError(std::string("recv failed: ") +
                             std::strerror(errno));
    }
    got += static_cast<std::size_t>(n);
  }
  return Status::OK();
}

/// Sends exactly `size` bytes, looping over partial sends.
Status SendExact(int fd, const std::uint8_t* buf, std::size_t size,
                 const char* detail) {
  std::size_t sent = 0;
  while (sent < size) {
    const long n = fault::net::Send(fd, buf + sent, size - sent, detail);
    if (n < 0) {
      return Status::IOError(std::string("send failed: ") +
                             std::strerror(errno));
    }
    sent += static_cast<std::size_t>(n);
  }
  return Status::OK();
}

}  // namespace

Status SendFrame(int fd, const std::uint8_t* payload, std::size_t size,
                 const char* detail) {
  if (size > kMaxFramePayload) {
    return Status::InvalidArgument("frame payload exceeds the protocol cap");
  }
  BinaryWriter header;
  header.Write<std::uint32_t>(kFrameMagic);
  header.Write<std::uint32_t>(static_cast<std::uint32_t>(size));
  header.Write<std::uint32_t>(Crc32c(payload, size));
  MVP_RETURN_NOT_OK(SendExact(fd, header.buffer().data(),
                              header.buffer().size(), detail));
  return SendExact(fd, payload, size, detail);
}

Result<std::vector<std::uint8_t>> RecvFrame(int fd, const char* detail,
                                            std::size_t max_payload) {
  std::uint8_t header[kFrameHeaderBytes];
  bool eof_at_start = false;
  Status got = RecvExact(fd, header, sizeof(header), detail, &eof_at_start);
  if (!got.ok()) {
    // A clean close between frames is the normal end of a conversation;
    // report it as NotFound so callers can tell it from a torn frame.
    if (eof_at_start) return Status::NotFound("peer closed connection");
    return got;
  }
  BinaryReader reader(header, sizeof(header));
  std::uint32_t magic = 0, length = 0, crc = 0;
  MVP_RETURN_NOT_OK(reader.Read<std::uint32_t>(&magic));
  MVP_RETURN_NOT_OK(reader.Read<std::uint32_t>(&length));
  MVP_RETURN_NOT_OK(reader.Read<std::uint32_t>(&crc));
  if (magic != kFrameMagic) {
    return Status::Corruption("bad frame magic");
  }
  if (length > max_payload) {
    return Status::InvalidArgument("frame length exceeds the protocol cap");
  }
  std::vector<std::uint8_t> payload(length);
  MVP_RETURN_NOT_OK(RecvExact(fd, payload.data(), payload.size(), detail,
                              nullptr));
  if (Crc32c(payload.data(), payload.size()) != crc) {
    return Status::Corruption("frame payload fails its CRC");
  }
  return payload;
}

void EncodeQuery(const WireQuery& query, BinaryWriter* out) {
  out->Write<std::uint8_t>(query.kind);
  out->Write<double>(query.radius);
  out->Write<std::uint64_t>(query.k);
  out->Write<std::uint64_t>(query.timeout_ns);
  out->Write<std::uint64_t>(query.max_distance_computations);
  out->WriteVector(query.point);
}

Status DecodeQuery(BinaryReader* in, WireQuery* query) {
  MVP_RETURN_NOT_OK(in->Read<std::uint8_t>(&query->kind));
  if (query->kind > 1) {
    return Status::Corruption("query kind out of range");
  }
  MVP_RETURN_NOT_OK(in->Read<double>(&query->radius));
  MVP_RETURN_NOT_OK(in->Read<std::uint64_t>(&query->k));
  MVP_RETURN_NOT_OK(in->Read<std::uint64_t>(&query->timeout_ns));
  MVP_RETURN_NOT_OK(in->Read<std::uint64_t>(&query->max_distance_computations));
  return in->ReadVector(&query->point);
}

void EncodeOutcome(const WireOutcome& outcome, BinaryWriter* out) {
  out->Write<std::uint32_t>(outcome.status_code);
  out->WriteString(outcome.status_message);
  out->Write<std::uint8_t>(outcome.partial ? 1 : 0);
  out->Write<std::uint64_t>(outcome.latency_ns);
  out->Write<std::uint64_t>(outcome.distance_computations);
  out->Write<std::uint64_t>(outcome.search.distance_computations);
  out->Write<std::uint64_t>(outcome.search.nodes_visited);
  out->Write<std::uint64_t>(outcome.search.leaf_points_seen);
  out->Write<std::uint64_t>(outcome.search.leaf_points_filtered);
  out->Write<std::uint64_t>(outcome.neighbors.size());
  for (const Neighbor& n : outcome.neighbors) {
    out->Write<std::uint64_t>(n.id);
    out->Write<double>(n.distance);
  }
}

Status DecodeOutcome(BinaryReader* in, WireOutcome* outcome) {
  MVP_RETURN_NOT_OK(in->Read<std::uint32_t>(&outcome->status_code));
  if (outcome->status_code >
      static_cast<std::uint32_t>(StatusCode::kResourceExhausted)) {
    return Status::Corruption("outcome status code out of range");
  }
  MVP_RETURN_NOT_OK(in->ReadString(&outcome->status_message));
  std::uint8_t partial = 0;
  MVP_RETURN_NOT_OK(in->Read<std::uint8_t>(&partial));
  outcome->partial = partial != 0;
  MVP_RETURN_NOT_OK(in->Read<std::uint64_t>(&outcome->latency_ns));
  MVP_RETURN_NOT_OK(in->Read<std::uint64_t>(&outcome->distance_computations));
  MVP_RETURN_NOT_OK(
      in->Read<std::uint64_t>(&outcome->search.distance_computations));
  MVP_RETURN_NOT_OK(in->Read<std::uint64_t>(&outcome->search.nodes_visited));
  MVP_RETURN_NOT_OK(
      in->Read<std::uint64_t>(&outcome->search.leaf_points_seen));
  MVP_RETURN_NOT_OK(
      in->Read<std::uint64_t>(&outcome->search.leaf_points_filtered));
  std::uint64_t count = 0;
  MVP_RETURN_NOT_OK(
      in->ReadLengthPrefix(sizeof(std::uint64_t) + sizeof(double), &count));
  outcome->neighbors.resize(static_cast<std::size_t>(count));
  for (Neighbor& n : outcome->neighbors) {
    std::uint64_t id = 0;
    MVP_RETURN_NOT_OK(in->Read<std::uint64_t>(&id));
    n.id = static_cast<std::size_t>(id);
    MVP_RETURN_NOT_OK(in->Read<double>(&n.distance));
  }
  return Status::OK();
}

void EncodeStats(const serve::ServeStatsSnapshot& snap, BinaryWriter* out) {
  out->Write<std::uint64_t>(snap.queries);
  out->Write<std::uint64_t>(snap.ok);
  out->Write<std::uint64_t>(snap.partial);
  out->Write<std::uint64_t>(snap.deadline_exceeded);
  out->Write<std::uint64_t>(snap.shed);
  out->Write<std::uint64_t>(snap.distance_computations);
  out->Write<std::uint64_t>(snap.results_returned);
  out->Write<std::int64_t>(snap.p50.count());
  out->Write<std::int64_t>(snap.p95.count());
  out->Write<std::int64_t>(snap.p99.count());
  out->Write<std::int64_t>(snap.max.count());
  out->Write<std::int64_t>(snap.degraded_p50.count());
  out->Write<std::int64_t>(snap.degraded_p99.count());
  out->Write<std::int64_t>(snap.degraded_max.count());
}

Status DecodeStats(BinaryReader* in, serve::ServeStatsSnapshot* snap) {
  MVP_RETURN_NOT_OK(in->Read<std::uint64_t>(&snap->queries));
  MVP_RETURN_NOT_OK(in->Read<std::uint64_t>(&snap->ok));
  MVP_RETURN_NOT_OK(in->Read<std::uint64_t>(&snap->partial));
  MVP_RETURN_NOT_OK(in->Read<std::uint64_t>(&snap->deadline_exceeded));
  MVP_RETURN_NOT_OK(in->Read<std::uint64_t>(&snap->shed));
  MVP_RETURN_NOT_OK(in->Read<std::uint64_t>(&snap->distance_computations));
  MVP_RETURN_NOT_OK(in->Read<std::uint64_t>(&snap->results_returned));
  std::int64_t ns = 0;
  MVP_RETURN_NOT_OK(in->Read<std::int64_t>(&ns));
  snap->p50 = std::chrono::nanoseconds(ns);
  MVP_RETURN_NOT_OK(in->Read<std::int64_t>(&ns));
  snap->p95 = std::chrono::nanoseconds(ns);
  MVP_RETURN_NOT_OK(in->Read<std::int64_t>(&ns));
  snap->p99 = std::chrono::nanoseconds(ns);
  MVP_RETURN_NOT_OK(in->Read<std::int64_t>(&ns));
  snap->max = std::chrono::nanoseconds(ns);
  MVP_RETURN_NOT_OK(in->Read<std::int64_t>(&ns));
  snap->degraded_p50 = std::chrono::nanoseconds(ns);
  MVP_RETURN_NOT_OK(in->Read<std::int64_t>(&ns));
  snap->degraded_p99 = std::chrono::nanoseconds(ns);
  MVP_RETURN_NOT_OK(in->Read<std::int64_t>(&ns));
  snap->degraded_max = std::chrono::nanoseconds(ns);
  return Status::OK();
}

void EncodeCollectionInfo(const WireCollectionInfo& info, BinaryWriter* out) {
  out->WriteString(info.name);
  out->WriteString(info.metric);
  out->Write<std::uint8_t>(info.dynamic ? 1 : 0);
  out->Write<std::uint64_t>(info.generation);
  out->Write<std::uint64_t>(info.size);
}

Status DecodeCollectionInfo(BinaryReader* in, WireCollectionInfo* info) {
  MVP_RETURN_NOT_OK(in->ReadString(&info->name));
  MVP_RETURN_NOT_OK(in->ReadString(&info->metric));
  std::uint8_t dynamic = 0;
  MVP_RETURN_NOT_OK(in->Read<std::uint8_t>(&dynamic));
  info->dynamic = dynamic != 0;
  MVP_RETURN_NOT_OK(in->Read<std::uint64_t>(&info->generation));
  return in->Read<std::uint64_t>(&info->size);
}

void EncodeWalSegment(const WireWalSegment& segment, BinaryWriter* out) {
  out->Write<std::uint64_t>(segment.leader_epoch);
  out->Write<std::uint64_t>(segment.floor_seq);
  out->Write<std::uint64_t>(segment.generation);
  out->Write<std::uint64_t>(segment.applied_seq);
  out->Write<std::uint64_t>(segment.records.size());
  for (const wal::WalRecord& record : segment.records) {
    out->Write<std::uint8_t>(static_cast<std::uint8_t>(record.op));
    out->Write<std::uint64_t>(record.seq);
    out->Write<std::uint64_t>(record.id);
    out->WriteVector(record.payload);
  }
}

Status DecodeWalSegment(BinaryReader* in, WireWalSegment* segment) {
  MVP_RETURN_NOT_OK(in->Read<std::uint64_t>(&segment->leader_epoch));
  MVP_RETURN_NOT_OK(in->Read<std::uint64_t>(&segment->floor_seq));
  MVP_RETURN_NOT_OK(in->Read<std::uint64_t>(&segment->generation));
  MVP_RETURN_NOT_OK(in->Read<std::uint64_t>(&segment->applied_seq));
  std::uint64_t count = 0;
  // Each record costs at least the fixed frame body (op/seq/id/payload len).
  MVP_RETURN_NOT_OK(in->ReadLengthPrefix(wal::kFrameFixedBytes, &count));
  segment->records.resize(static_cast<std::size_t>(count));
  for (wal::WalRecord& record : segment->records) {
    std::uint8_t op = 0;
    MVP_RETURN_NOT_OK(in->Read<std::uint8_t>(&op));
    if (op != static_cast<std::uint8_t>(wal::WalOp::kInsert) &&
        op != static_cast<std::uint8_t>(wal::WalOp::kErase)) {
      return Status::Corruption("wal segment record op out of range");
    }
    record.op = static_cast<wal::WalOp>(op);
    MVP_RETURN_NOT_OK(in->Read<std::uint64_t>(&record.seq));
    MVP_RETURN_NOT_OK(in->Read<std::uint64_t>(&record.id));
    MVP_RETURN_NOT_OK(in->ReadVector(&record.payload));
  }
  return Status::OK();
}

void EncodeReadiness(const WireReadiness& readiness, BinaryWriter* out) {
  out->Write<std::uint8_t>(readiness.state);
  out->Write<std::uint64_t>(readiness.leader_epoch);
  out->Write<std::uint64_t>(readiness.generation_lag);
}

Status DecodeReadiness(BinaryReader* in, WireReadiness* readiness) {
  MVP_RETURN_NOT_OK(in->Read<std::uint8_t>(&readiness->state));
  if (readiness->state >
      static_cast<std::uint8_t>(ReadinessState::kDraining)) {
    return Status::Corruption("readiness state out of range");
  }
  MVP_RETURN_NOT_OK(in->Read<std::uint64_t>(&readiness->leader_epoch));
  return in->Read<std::uint64_t>(&readiness->generation_lag);
}

void EncodeResponseStatus(const Status& status, BinaryWriter* out) {
  out->Write<std::uint32_t>(static_cast<std::uint32_t>(status.code()));
  out->WriteString(status.message());
}

Status DecodeResponseStatus(BinaryReader* in, Status* status) {
  std::uint32_t code = 0;
  MVP_RETURN_NOT_OK(in->Read<std::uint32_t>(&code));
  if (code > static_cast<std::uint32_t>(StatusCode::kResourceExhausted)) {
    return Status::Corruption("response status code out of range");
  }
  std::string message;
  MVP_RETURN_NOT_OK(in->ReadString(&message));
  *status = code == 0 ? Status::OK()
                      : Status(static_cast<StatusCode>(code),
                               std::move(message));
  return Status::OK();
}

}  // namespace mvp::net

#endif  // MVPTREE_FAULT_FS_POSIX

#include "net/server.h"

#include "fault/fault_net.h"  // platform gate: defines MVPTREE_FAULT_FS_POSIX

#if defined(MVPTREE_FAULT_FS_POSIX)

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <memory>
#include <thread>
#include <utility>

#include "common/codec.h"
#include "common/thread_annotations.h"
#include "dynamic/dynamic_overlay.h"
#include "metric/lp.h"
#include "net/client.h"
#include "net/replication.h"
#include "net/wire.h"
#include "serve/executor.h"
#include "serve/serve_stats.h"
#include "serve/sharded_index.h"
#include "serve/thread_pool.h"
#include "snapshot/async_loader.h"
#include "snapshot/mmap_file.h"
#include "snapshot/snapshot_store.h"

namespace mvp::net {
namespace {

using Vector = std::vector<double>;

/// Server-side ceiling on one FetchChunk slice. Keeps a replication pull's
/// frames well under kMaxFramePayload and bounds per-request memory.
constexpr std::uint64_t kMaxFetchChunkBytes = std::uint64_t{8} << 20;

/// Ceiling on one FetchWalSince segment's record payload bytes. A follower
/// far behind re-fetches from its advanced cursor; the first record always
/// ships so progress is guaranteed whatever the record size.
constexpr std::uint64_t kMaxWalShipBytes = std::uint64_t{4} << 20;

serve::BatchQuery<Vector> ToBatchQuery(const WireQuery& wire,
                                       std::uint64_t max_timeout_ns) {
  serve::BatchQuery<Vector> query;
  query.kind = wire.kind == 1 ? serve::BatchQuery<Vector>::Kind::kKnn
                              : serve::BatchQuery<Vector>::Kind::kRange;
  query.object = wire.point;
  query.radius = wire.radius;
  query.k = static_cast<std::size_t>(wire.k);
  const std::uint64_t timeout_ns = std::min(wire.timeout_ns, max_timeout_ns);
  query.timeout = timeout_ns == kNoTimeout
                      ? std::chrono::nanoseconds::max()
                      : std::chrono::nanoseconds(timeout_ns);
  query.max_distance_computations = wire.max_distance_computations;
  return query;
}

WireOutcome ToWireOutcome(const serve::QueryOutcome& outcome) {
  WireOutcome wire;
  wire.status_code = static_cast<std::uint32_t>(outcome.status.code());
  wire.status_message = outcome.status.message();
  wire.partial = outcome.partial;
  wire.latency_ns = static_cast<std::uint64_t>(outcome.latency.count());
  wire.distance_computations = outcome.distance_computations;
  wire.search = outcome.search;
  wire.neighbors = outcome.neighbors;
  return wire;
}

/// One tenant: the metric-erased facade the dispatch loop talks to.
/// Stats and admission state live here so both collection flavours share
/// the accounting; the derived classes own the index and the load path.
class Collection {
 public:
  explicit Collection(CollectionOptions options)
      : options_(std::move(options)), admission_(options_.admission) {}
  virtual ~Collection() = default;

  /// Initial load. A static collection over an empty store opens
  /// successfully and serves NotFound until a generation arrives.
  virtual Status Open(serve::ThreadPool* pool) = 0;
  /// Hot-swap to the store's committed generation (static only).
  virtual Status Refresh(serve::ThreadPool* pool) = 0;
  /// Runs `queries` through serve::RunBatch with this tenant's admission
  /// controller and deadline cap; outcomes in input order.
  virtual std::vector<WireOutcome> Run(const std::vector<WireQuery>& queries,
                                       serve::ThreadPool* pool) = 0;
  virtual WireCollectionInfo Info() const = 0;

  // Dynamic-only surface (mutations, WAL shipping, follower apply). The
  // defaults reject so the dispatch layer never needs a dynamic_cast.
  virtual Result<std::uint64_t> Insert(const Vector&) { return NotDynamic(); }
  virtual Status Erase(std::uint64_t) { return NotDynamic(); }
  virtual Result<std::uint64_t> Checkpoint() { return NotDynamic(); }
  virtual Result<std::uint64_t> Compact(serve::ThreadPool*) {
    return NotDynamic();
  }
  /// The WAL tail past `since` plus the shipping watermarks (leader side).
  virtual Result<WireWalSegment> WalSince(std::uint64_t) {
    return NotDynamic();
  }
  /// Applies a shipped segment's records in order (follower side).
  virtual Status ApplySegment(const WireWalSegment&) { return NotDynamic(); }
  /// Reopens the overlay from its directory and hot-swaps it into serving —
  /// the follower's publish point after a generation pull.
  virtual Status Reopen(serve::ThreadPool*) { return NotDynamic(); }
  /// Last WAL sequence applied locally (the follower's shipping cursor).
  virtual std::uint64_t AppliedSeq() const { return 0; }

  const CollectionOptions& options() const { return options_; }
  serve::ServeStatsSnapshot StatsSnapshot() const { return stats_.Snapshot(); }

  /// Leader-applied minus locally-applied sequence at the last Follow poll
  /// (Readiness reports it so a failover client can prefer fresher
  /// followers). Zero on a leader or a caught-up follower.
  std::uint64_t GenerationLag() const {
    return lag_.load(std::memory_order_relaxed);
  }
  void SetGenerationLag(std::uint64_t lag) {
    lag_.store(lag, std::memory_order_relaxed);
  }

 protected:
  std::vector<serve::BatchQuery<Vector>> ToBatch(
      const std::vector<WireQuery>& queries) const {
    std::vector<serve::BatchQuery<Vector>> batch;
    batch.reserve(queries.size());
    for (const WireQuery& q : queries) {
      batch.push_back(ToBatchQuery(q, options_.max_timeout_ns));
    }
    return batch;
  }

  Status NotDynamic() const {
    return Status::InvalidArgument("collection '" + options_.name +
                                   "' is not dynamic");
  }

  CollectionOptions options_;
  serve::ServeStats stats_;
  serve::AdmissionController admission_;
  std::atomic<std::uint64_t> lag_{0};
};

/// A static collection: a snapshot generation behind a GenerationCell.
/// Refresh loads the committed generation off to the side and publishes it
/// with one atomic swap; queries in flight finish on the old one.
template <typename Metric>
class StaticCollection final : public Collection {
 public:
  explicit StaticCollection(CollectionOptions options)
      : Collection(std::move(options)), store_(options_.dir) {}

  Status Open(serve::ThreadPool* pool) override {
    const Status status = Refresh(pool);
    // An empty store is the follower-before-first-replication state, not a
    // startup failure; anything else (corruption, wrong kind) is.
    if (status.code() == StatusCode::kNotFound) return Status::OK();
    return status;
  }

  Status Refresh(serve::ThreadPool* pool) override {
    auto current = store_.CurrentGeneration();
    if (!current.ok()) return current.status();
    auto manifest = store_.ReadManifest(current.value());
    if (!manifest.ok()) return manifest.status();
    std::shared_ptr<Generation> generation;
    switch (manifest.value().index_kind) {
      case snapshot::IndexKind::kFlatShardedMvpIndex: {
        auto loaded = store_.template OpenFlat<Metric>(Metric{}, pool);
        if (!loaded.ok()) return loaded.status();
        generation =
            std::make_shared<Generation>(std::move(loaded.value().index));
        generation->generation = loaded.value().generation;
        break;
      }
      case snapshot::IndexKind::kShardedMvpIndex: {
        auto loaded = store_.template LoadSharded<Vector, Metric>(
            Metric{}, VectorCodec{}, pool);
        if (!loaded.ok()) return loaded.status();
        generation =
            std::make_shared<Generation>(std::move(loaded.value().index));
        generation->stable_ids = std::move(loaded.value().stable_ids);
        generation->generation = loaded.value().generation;
        break;
      }
      default:
        return Status::NotSupported(
            "static collection '" + options_.name +
            "': committed generation is not a full sharded snapshot (serve "
            "delta lineages through a dynamic collection)");
    }
    cell_.Publish(std::move(generation));
    return Status::OK();
  }

  std::vector<WireOutcome> Run(const std::vector<WireQuery>& queries,
                               serve::ThreadPool* pool) override {
    std::shared_ptr<const Generation> generation = cell_.Get();
    if (generation == nullptr) {
      WireOutcome missing;
      const Status status = Status::NotFound(
          "collection '" + options_.name + "' has no generation loaded");
      missing.status_code = static_cast<std::uint32_t>(status.code());
      missing.status_message = status.message();
      return std::vector<WireOutcome>(queries.size(), missing);
    }
    serve::ExecutorOptions executor;
    executor.admission = &admission_;
    auto outcomes = serve::RunBatch(generation->index, ToBatch(queries), pool,
                                    &stats_, executor);
    std::vector<WireOutcome> wire;
    wire.reserve(outcomes.size());
    for (const serve::QueryOutcome& outcome : outcomes) {
      wire.push_back(ToWireOutcome(outcome));
      if (!generation->stable_ids.empty()) {
        // A compacted generation's dense ids are internal; clients address
        // objects by stable id, like the overlay that wrote it would.
        for (Neighbor& n : wire.back().neighbors) {
          n.id = static_cast<std::size_t>(generation->stable_ids[n.id]);
        }
      }
    }
    return wire;
  }

  WireCollectionInfo Info() const override {
    WireCollectionInfo info;
    info.name = options_.name;
    info.metric = options_.metric;
    info.dynamic = false;
    if (auto generation = cell_.Get(); generation != nullptr) {
      info.generation = generation->generation;
      info.size = generation->index.size();
    }
    return info;
  }

 private:
  struct Generation {
    explicit Generation(serve::ShardedMvpIndex<Vector, Metric> loaded)
        : index(std::move(loaded)) {}
    serve::ShardedMvpIndex<Vector, Metric> index;
    std::vector<std::uint64_t> stable_ids;  ///< empty = identity
    std::uint64_t generation = 0;
  };

  snapshot::SnapshotStore store_;
  snapshot::GenerationCell<Generation> cell_;
};

/// A dynamic collection: a live DynamicOverlay (WAL + memtable over an
/// optional base generation). Always serving its current state — Refresh
/// is a no-op because there is nothing stale to swap. The overlay sits
/// behind a shared_ptr so a follower's generation-pull fallback can reopen
/// and hot-swap it while in-flight queries finish on the old instance.
template <typename Metric>
class DynamicCollection final : public Collection {
 public:
  using Overlay = dynamic::DynamicOverlay<Vector, Metric, VectorCodec>;

  explicit DynamicCollection(CollectionOptions options)
      : Collection(std::move(options)) {}

  Status Open(serve::ThreadPool* pool) override { return Reopen(pool); }

  Status Refresh(serve::ThreadPool*) override { return Status::OK(); }

  Status Reopen(serve::ThreadPool* pool) override {
    auto opened =
        Overlay::Open(options_.dir, Metric{}, VectorCodec{}, {}, pool);
    if (!opened.ok()) return opened.status();
    MutexLock lock(&overlay_mu_);
    overlay_ = std::shared_ptr<Overlay>(std::move(opened.value()));
    return Status::OK();
  }

  std::vector<WireOutcome> Run(const std::vector<WireQuery>& queries,
                               serve::ThreadPool* pool) override {
    auto live = overlay();
    serve::ExecutorOptions executor;
    executor.admission = &admission_;
    auto outcomes =
        serve::RunBatch(*live, ToBatch(queries), pool, &stats_, executor);
    std::vector<WireOutcome> wire;
    wire.reserve(outcomes.size());
    for (const serve::QueryOutcome& outcome : outcomes) {
      wire.push_back(ToWireOutcome(outcome));
    }
    return wire;
  }

  WireCollectionInfo Info() const override {
    auto live = overlay();
    WireCollectionInfo info;
    info.name = options_.name;
    info.metric = options_.metric;
    info.dynamic = true;
    info.generation = live->generation();
    info.size = live->size();
    return info;
  }

  Result<std::uint64_t> Insert(const Vector& point) override {
    auto id = overlay()->Insert(point);
    if (!id.ok()) return id.status();
    return static_cast<std::uint64_t>(id.value());
  }

  Status Erase(std::uint64_t stable_id) override {
    return overlay()->Erase(static_cast<std::size_t>(stable_id));
  }

  Result<std::uint64_t> Checkpoint() override {
    return overlay()->Checkpoint();
  }

  Result<std::uint64_t> Compact(serve::ThreadPool* pool) override {
    return overlay()->Compact(pool);
  }

  /// Builds the shipping segment for a follower at cursor `since`. Only
  /// SYNCED records are in the file (WalWriter buffers until Sync), so
  /// everything shipped is a leader-acknowledged mutation; `applied_seq`
  /// is the durable high-water mark the follower converges to. A torn tail
  /// from a concurrent group commit simply ends this segment early — the
  /// next poll picks the records up once they are durable.
  Result<WireWalSegment> WalSince(std::uint64_t since) override {
    auto live = overlay();
    WireWalSegment segment;
    segment.leader_epoch = snapshot::SnapshotStore(options_.dir).ReadEpoch();
    segment.floor_seq = live->checkpoint_seq();
    segment.generation = live->generation();
    segment.applied_seq = segment.floor_seq;
    if (since < segment.floor_seq) {
      // The records below the floor were folded into generations and
      // truncated away; empty records + a floor above the cursor tells the
      // follower to pull the generation lineage instead.
      return segment;
    }
    auto log = wal::ReadWal(live->wal_path());
    if (!log.ok()) return log.status();
    std::uint64_t bytes = 0;
    for (wal::WalRecord& record : log.value().records) {
      segment.applied_seq = std::max(segment.applied_seq, record.seq);
      if (record.seq <= since) continue;
      bytes += wal::kFrameFixedBytes + record.payload.size();
      if (!segment.records.empty() && bytes > kMaxWalShipBytes) continue;
      segment.records.push_back(std::move(record));
    }
    return segment;
  }

  Status ApplySegment(const WireWalSegment& segment) override {
    return overlay()->ApplyReplicated(segment.records);
  }

  std::uint64_t AppliedSeq() const override {
    return overlay()->applied_seq();
  }

 private:
  std::shared_ptr<Overlay> overlay() const {
    MutexLock lock(&overlay_mu_);
    return overlay_;
  }

  mutable Mutex overlay_mu_;
  std::shared_ptr<Overlay> overlay_ MVP_GUARDED_BY(overlay_mu_);
};

Result<std::unique_ptr<Collection>> MakeCollection(
    const CollectionOptions& options) {
  if (options.name.empty()) {
    return Status::InvalidArgument("collection name must be non-empty");
  }
  auto make = [&](auto metric) -> std::unique_ptr<Collection> {
    using Metric = decltype(metric);
    if (options.dynamic) {
      return std::make_unique<DynamicCollection<Metric>>(options);
    }
    return std::make_unique<StaticCollection<Metric>>(options);
  };
  if (options.metric == "l1") return make(metric::L1{});
  if (options.metric == "l2") return make(metric::L2{});
  if (options.metric == "linf") return make(metric::LInf{});
  return Status::InvalidArgument("unknown metric '" + options.metric +
                                 "' (expected l1, l2, or linf)");
}

}  // namespace

class Server::Impl {
 public:
  explicit Impl(ServerOptions options)
      : options_(std::move(options)),
        pool_(options_.threads != 0
                  ? options_.threads
                  : std::max<std::size_t>(
                        std::thread::hardware_concurrency(), 2)) {}

  ~Impl() { Stop(); }

  Status Start() {
    for (const CollectionOptions& spec : options_.collections) {
      if (FindCollection(spec.name) != nullptr) {
        return Status::InvalidArgument("duplicate collection '" + spec.name +
                                       "'");
      }
      auto collection = MakeCollection(spec);
      if (!collection.ok()) return collection.status();
      MVP_RETURN_NOT_OK(collection.value()->Open(&pool_));
      collections_.push_back(std::move(collection.value()));
    }

    listen_fd_ = fault::net::Socket(AF_INET, SOCK_STREAM, 0, "server:listen");
    if (listen_fd_ < 0) {
      return Status::IOError(std::string("socket failed: ") +
                             std::strerror(errno));
    }
    const int enable = 1;
    // Best-effort: rebinding a recently-closed port is a convenience, not
    // a correctness requirement.
    (void)fault::net::SetSockOpt(listen_fd_, SOL_SOCKET, SO_REUSEADDR,
                                 &enable, sizeof(enable));
    struct ::sockaddr_in addr {};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(options_.port);
    if (fault::net::Bind(listen_fd_,
                         reinterpret_cast<const struct ::sockaddr*>(&addr),
                         sizeof(addr), "server:listen") != 0) {
      return Status::IOError(std::string("bind failed: ") +
                             std::strerror(errno));
    }
    if (fault::net::Listen(listen_fd_, 64, "server:listen") != 0) {
      return Status::IOError(std::string("listen failed: ") +
                             std::strerror(errno));
    }
    struct ::sockaddr_in bound {};
    ::socklen_t bound_len = sizeof(bound);
    if (fault::net::GetSockName(
            listen_fd_, reinterpret_cast<struct ::sockaddr*>(&bound),
            &bound_len) != 0) {
      return Status::IOError(std::string("getsockname failed: ") +
                             std::strerror(errno));
    }
    port_ = ntohs(bound.sin_port);
    accept_thread_ = std::thread([this] { AcceptLoop(); });
    return Status::OK();
  }

  std::uint16_t port() const { return port_; }

  Status Refresh(const std::string& name) {
    Collection* collection = FindCollection(name);
    if (collection == nullptr) {
      return Status::NotFound("no collection '" + name + "'");
    }
    return collection->Refresh(&pool_);
  }

  void Stop() {
    {
      MutexLock lock(&mu_);
      if (stopping_) return;
      stopping_ = true;
      for (const int fd : conn_fds_) {
        // Wakes the connection thread out of its blocking recv; the thread
        // owns the close.
        (void)fault::net::ShutdownSocket(fd, SHUT_RDWR, "server:stop");
      }
    }
    if (listen_fd_ >= 0) {
      // Wakes the accept loop (Linux returns EINVAL from the pending
      // accept once the listener is shut down).
      (void)fault::net::ShutdownSocket(listen_fd_, SHUT_RDWR, "server:stop");
    }
    if (accept_thread_.joinable()) accept_thread_.join();
    std::vector<std::thread> threads;
    {
      MutexLock lock(&mu_);
      threads.swap(conn_threads_);
    }
    for (std::thread& thread : threads) {
      if (thread.joinable()) thread.join();
    }
    if (listen_fd_ >= 0) {
      // Shutdown path; every connection is already joined above.
      (void)fault::net::CloseSocket(listen_fd_, "server:stop");
      listen_fd_ = -1;
    }
  }

 private:
  Collection* FindCollection(const std::string& name) {
    for (const auto& collection : collections_) {
      if (collection->options().name == name) return collection.get();
    }
    return nullptr;
  }

  void AcceptLoop() {
    while (true) {
      // EINTR is retried inside the fault::net seam; negative = shutdown
      // (or a fatal listener error) — Stop() distinguishes nothing further.
      const int fd = fault::net::Accept(listen_fd_, "server:accept");
      if (fd < 0) return;
      // Responses also go out header-then-payload; see the NODELAY note in
      // client.cc. Best-effort.
      const int one = 1;
      // Best-effort: without the option the connection is slow, not wrong.
      (void)fault::net::SetSockOpt(fd, IPPROTO_TCP, TCP_NODELAY, &one,
                                   sizeof(one));
      bool over_cap = false;
      {
        MutexLock lock(&mu_);
        if (stopping_) {
          // Racing Stop(); the peer sees a hangup either way.
          (void)fault::net::CloseSocket(fd, "server:accept");
          return;
        }
        over_cap = conn_fds_.size() >= options_.max_connections;
        if (!over_cap) {
          conn_fds_.push_back(fd);
          conn_threads_.emplace_back([this, fd] { ServeConnection(fd); });
        }
      }
      if (over_cap) {
        // One clean, parseable refusal, then hang up: the peer's first
        // RoundTrip decodes ResourceExhausted instead of a mystery EOF.
        // Sent outside mu_ — a non-reading peer stalls only this loop
        // iteration, never the lock. The frame fits the socket buffer, so
        // in practice the send does not block at all.
        BinaryWriter out;
        EncodeResponseStatus(
            Status::ResourceExhausted(
                "connection limit reached (" +
                std::to_string(options_.max_connections) + ")"),
            &out);
        // Best-effort courtesy frame; the refusal stands either way.
        (void)SendFrame(fd, out.buffer(), "server:accept");
        // The fd is dead to us regardless of how close goes.
        (void)fault::net::CloseSocket(fd, "server:accept");
      }
    }
  }

  void ServeConnection(int fd) {
    while (true) {
      auto frame = RecvFrame(fd, "server:conn");
      if (!frame.ok()) {
        // NotFound is the client hanging up between requests — silence.
        // A torn or corrupt frame means the stream may have lost sync, so
        // report once and hang up rather than guess at resynchronization.
        if (frame.status().code() == StatusCode::kCorruption ||
            frame.status().code() == StatusCode::kInvalidArgument) {
          BinaryWriter out;
          EncodeResponseStatus(frame.status(), &out);
          // Courtesy error to a peer that broke framing; if the send also
          // fails the connection is closing anyway.
          (void)SendFrame(fd, out.buffer(), "server:conn");
        }
        break;
      }
      if (!HandleRequest(fd, frame.value())) break;
    }
    {
      MutexLock lock(&mu_);
      conn_fds_.erase(std::remove(conn_fds_.begin(), conn_fds_.end(), fd),
                      conn_fds_.end());
    }
    // End of the connection's life; nothing left to report a close error to.
    (void)fault::net::CloseSocket(fd, "server:conn");
  }

  /// Handles one request frame. Returns false when the connection should
  /// close (send failure); a request-level error is a response, not a
  /// disconnect.
  bool HandleRequest(int fd, const std::vector<std::uint8_t>& payload) {
    BinaryReader reader(payload.data(), payload.size());
    std::uint32_t op_raw = 0;
    Status parsed = reader.Read<std::uint32_t>(&op_raw);
    if (!parsed.ok()) return SendError(fd, parsed);
    switch (static_cast<Op>(op_raw)) {
      case Op::kPing: {
        BinaryWriter out;
        EncodeResponseStatus(Status::OK(), &out);
        out.WriteString("mvpt-server");
        out.Write<std::uint32_t>(1);  // protocol version
        return SendFrame(fd, out.buffer(), "server:conn").ok();
      }
      case Op::kListCollections: {
        BinaryWriter out;
        EncodeResponseStatus(Status::OK(), &out);
        out.Write<std::uint64_t>(collections_.size());
        for (const auto& collection : collections_) {
          EncodeCollectionInfo(collection->Info(), &out);
        }
        return SendFrame(fd, out.buffer(), "server:conn").ok();
      }
      case Op::kQuery: {
        if (!EnterQuery()) return SendDraining(fd);
        const bool alive = HandleQuery(fd, &reader);
        LeaveQuery();
        return alive;
      }
      case Op::kBatchQuery: {
        if (!EnterQuery()) return SendDraining(fd);
        const bool alive = HandleBatchQuery(fd, &reader);
        LeaveQuery();
        return alive;
      }
      case Op::kStats: {
        std::string name;
        Status status = reader.ReadString(&name);
        if (!status.ok()) return SendError(fd, status);
        Collection* collection = FindCollection(name);
        if (collection == nullptr) {
          return SendError(fd, Status::NotFound("no collection '" + name +
                                                "'"));
        }
        BinaryWriter out;
        EncodeResponseStatus(Status::OK(), &out);
        EncodeStats(collection->StatsSnapshot(), &out);
        return SendFrame(fd, out.buffer(), "server:conn").ok();
      }
      case Op::kCurrentGeneration:
        return HandleCurrentGeneration(fd, &reader);
      case Op::kFetchManifest:
        return HandleFetchManifest(fd, &reader);
      case Op::kFetchChunk:
        return HandleFetchChunk(fd, &reader);
      case Op::kFetchWalSince:
        return HandleFetchWalSince(fd, &reader);
      case Op::kReadiness:
        return HandleReadiness(fd, &reader);
    }
    return SendError(
        fd, Status::InvalidArgument("unknown rpc op " +
                                    std::to_string(op_raw)));
  }

  bool SendError(int fd, const Status& status) {
    BinaryWriter out;
    EncodeResponseStatus(status, &out);
    return SendFrame(fd, out.buffer(), "server:conn").ok();
  }

  /// Registers an in-flight query unless the server is draining. Drain
  /// waits for the active count to hit zero, so a query that got in always
  /// finishes before the sockets close.
  bool EnterQuery() {
    MutexLock lock(&mu_);
    if (draining_) return false;
    ++active_requests_;
    return true;
  }

  void LeaveQuery() {
    MutexLock lock(&mu_);
    --active_requests_;
  }

  bool SendDraining(int fd) {
    // A clean per-request refusal: the connection stays usable (the peer
    // may still want Readiness or replication fetches), only queries stop.
    return SendError(fd,
                     Status::ResourceExhausted("server is draining"));
  }

  bool HandleQuery(int fd, BinaryReader* reader) {
    std::string name;
    Status status = reader->ReadString(&name);
    if (!status.ok()) return SendError(fd, status);
    WireQuery query;
    status = DecodeQuery(reader, &query);
    if (!status.ok()) return SendError(fd, status);
    Collection* collection = FindCollection(name);
    if (collection == nullptr) {
      return SendError(fd, Status::NotFound("no collection '" + name + "'"));
    }
    auto outcomes = collection->Run({query}, &pool_);
    BinaryWriter out;
    EncodeResponseStatus(Status::OK(), &out);
    EncodeOutcome(outcomes[0], &out);
    return SendFrame(fd, out.buffer(), "server:conn").ok();
  }

  /// Streaming batch: one header frame `[status][u64 count]`, then one
  /// outcome frame per query, in input order. The whole batch runs through
  /// one RunBatch call, so batch-relative deadlines and pool parallelism
  /// behave exactly as in-process.
  bool HandleBatchQuery(int fd, BinaryReader* reader) {
    std::string name;
    Status status = reader->ReadString(&name);
    if (!status.ok()) return SendError(fd, status);
    // The client controls this count, so validate it against what the frame
    // could actually carry before reserving: an encoded WireQuery is at
    // least 41 bytes (kind + k + radius + deadline + budget + vector length).
    std::uint64_t count = 0;
    status = reader->ReadLengthPrefix(1 + 8 + 8 + 8 + 8 + 8, &count);
    if (!status.ok()) return SendError(fd, status);
    std::vector<WireQuery> queries;
    queries.reserve(static_cast<std::size_t>(count));
    for (std::uint64_t i = 0; i < count; ++i) {
      WireQuery query;
      status = DecodeQuery(reader, &query);
      if (!status.ok()) return SendError(fd, status);
      queries.push_back(std::move(query));
    }
    Collection* collection = FindCollection(name);
    if (collection == nullptr) {
      return SendError(fd, Status::NotFound("no collection '" + name + "'"));
    }
    auto outcomes = collection->Run(queries, &pool_);
    BinaryWriter header;
    EncodeResponseStatus(Status::OK(), &header);
    header.Write<std::uint64_t>(outcomes.size());
    if (!SendFrame(fd, header.buffer(), "server:conn").ok()) return false;
    for (const WireOutcome& outcome : outcomes) {
      BinaryWriter out;
      EncodeOutcome(outcome, &out);
      if (!SendFrame(fd, out.buffer(), "server:conn").ok()) return false;
    }
    return true;
  }

  bool HandleCurrentGeneration(int fd, BinaryReader* reader) {
    std::string name;
    Status status = reader->ReadString(&name);
    if (!status.ok()) return SendError(fd, status);
    Collection* collection = FindCollection(name);
    if (collection == nullptr) {
      return SendError(fd, Status::NotFound("no collection '" + name + "'"));
    }
    snapshot::SnapshotStore store(collection->options().dir);
    auto generation = store.CurrentGeneration();
    if (!generation.ok()) return SendError(fd, generation.status());
    BinaryWriter out;
    EncodeResponseStatus(Status::OK(), &out);
    out.Write<std::uint64_t>(generation.value());
    return SendFrame(fd, out.buffer(), "server:conn").ok();
  }

  bool HandleFetchManifest(int fd, BinaryReader* reader) {
    std::string name;
    Status status = reader->ReadString(&name);
    if (!status.ok()) return SendError(fd, status);
    std::uint64_t generation = 0;
    status = reader->Read<std::uint64_t>(&generation);
    if (!status.ok()) return SendError(fd, status);
    Collection* collection = FindCollection(name);
    if (collection == nullptr) {
      return SendError(fd, Status::NotFound("no collection '" + name + "'"));
    }
    snapshot::SnapshotStore store(collection->options().dir);
    auto bytes = ReadFile(store.GenerationDir(generation) + "/" +
                          snapshot::SnapshotStore::kManifestFile);
    if (!bytes.ok()) return SendError(fd, bytes.status());
    BinaryWriter out;
    EncodeResponseStatus(Status::OK(), &out);
    out.WriteBytes(bytes.value().data(), bytes.value().size());
    return SendFrame(fd, out.buffer(), "server:conn").ok();
  }

  /// Serves `[offset, offset+length)` of a generation's container file.
  /// The slice is read off a fresh mapping per request — replication pulls
  /// are rare and sequential, so simplicity beats caching here.
  bool HandleFetchChunk(int fd, BinaryReader* reader) {
    std::string name;
    Status status = reader->ReadString(&name);
    if (!status.ok()) return SendError(fd, status);
    std::uint64_t generation = 0, offset = 0, length = 0;
    status = reader->Read<std::uint64_t>(&generation);
    if (status.ok()) status = reader->Read<std::uint64_t>(&offset);
    if (status.ok()) status = reader->Read<std::uint64_t>(&length);
    if (!status.ok()) return SendError(fd, status);
    if (length > kMaxFetchChunkBytes) {
      return SendError(fd, Status::InvalidArgument(
                               "chunk length exceeds the fetch cap"));
    }
    Collection* collection = FindCollection(name);
    if (collection == nullptr) {
      return SendError(fd, Status::NotFound("no collection '" + name + "'"));
    }
    snapshot::SnapshotStore store(collection->options().dir);
    auto mapping = snapshot::MmapFile::Open(
        store.GenerationDir(generation) + "/" +
        snapshot::SnapshotStore::kContainerFile);
    if (!mapping.ok()) return SendError(fd, mapping.status());
    if (offset > mapping.value().size() ||
        length > mapping.value().size() - offset) {
      return SendError(fd, Status::InvalidArgument(
                               "chunk range exceeds the container"));
    }
    BinaryWriter out;
    EncodeResponseStatus(Status::OK(), &out);
    out.WriteBytes(mapping.value().data() + offset,
                   static_cast<std::size_t>(length));
    return SendFrame(fd, out.buffer(), "server:conn").ok();
  }

  /// WAL shipping (docs/network_serving.md): the synced WAL tail past the
  /// follower's cursor, stamped with this store's leader epoch.
  bool HandleFetchWalSince(int fd, BinaryReader* reader) {
    std::string name;
    Status status = reader->ReadString(&name);
    if (!status.ok()) return SendError(fd, status);
    std::uint64_t since = 0;
    status = reader->Read<std::uint64_t>(&since);
    if (!status.ok()) return SendError(fd, status);
    Collection* collection = FindCollection(name);
    if (collection == nullptr) {
      return SendError(fd, Status::NotFound("no collection '" + name + "'"));
    }
    auto segment = collection->WalSince(since);
    if (!segment.ok()) return SendError(fd, segment.status());
    BinaryWriter out;
    EncodeResponseStatus(Status::OK(), &out);
    EncodeWalSegment(segment.value(), &out);
    return SendFrame(fd, out.buffer(), "server:conn").ok();
  }

  /// Health beyond "the TCP port answers": draining state, leader epoch,
  /// and replication lag — what a failover client ranks endpoints by. An
  /// empty collection name reports server-wide (max across collections).
  bool HandleReadiness(int fd, BinaryReader* reader) {
    std::string name;
    Status status = reader->ReadString(&name);
    if (!status.ok()) return SendError(fd, status);
    WireReadiness readiness;
    {
      MutexLock lock(&mu_);
      readiness.state = static_cast<std::uint8_t>(
          draining_ ? ReadinessState::kDraining : ReadinessState::kServing);
    }
    if (!name.empty()) {
      Collection* collection = FindCollection(name);
      if (collection == nullptr) {
        return SendError(fd,
                         Status::NotFound("no collection '" + name + "'"));
      }
      readiness.leader_epoch =
          snapshot::SnapshotStore(collection->options().dir).ReadEpoch();
      readiness.generation_lag = collection->GenerationLag();
    } else {
      for (const auto& collection : collections_) {
        readiness.leader_epoch = std::max(
            readiness.leader_epoch,
            snapshot::SnapshotStore(collection->options().dir).ReadEpoch());
        readiness.generation_lag = std::max(readiness.generation_lag,
                                            collection->GenerationLag());
      }
    }
    BinaryWriter out;
    EncodeResponseStatus(Status::OK(), &out);
    EncodeReadiness(readiness, &out);
    return SendFrame(fd, out.buffer(), "server:conn").ok();
  }

 public:
  Result<std::uint64_t> Insert(const std::string& name,
                               const std::vector<double>& point) {
    Collection* collection = FindCollection(name);
    if (collection == nullptr) {
      return Status::NotFound("no collection '" + name + "'");
    }
    return collection->Insert(point);
  }

  Status Erase(const std::string& name, std::uint64_t stable_id) {
    Collection* collection = FindCollection(name);
    if (collection == nullptr) {
      return Status::NotFound("no collection '" + name + "'");
    }
    return collection->Erase(stable_id);
  }

  Result<std::uint64_t> Checkpoint(const std::string& name) {
    Collection* collection = FindCollection(name);
    if (collection == nullptr) {
      return Status::NotFound("no collection '" + name + "'");
    }
    return collection->Checkpoint();
  }

  Result<std::uint64_t> Compact(const std::string& name) {
    Collection* collection = FindCollection(name);
    if (collection == nullptr) {
      return Status::NotFound("no collection '" + name + "'");
    }
    return collection->Compact(&pool_);
  }

  Result<std::uint64_t> Promote(const std::string& name) {
    Collection* collection = FindCollection(name);
    if (collection == nullptr) {
      return Status::NotFound("no collection '" + name + "'");
    }
    return snapshot::SnapshotStore(collection->options().dir).BumpEpoch();
  }

  Status Follow(const std::string& name, Client& leader) {
    Collection* collection = FindCollection(name);
    if (collection == nullptr) {
      return Status::NotFound("no collection '" + name + "'");
    }
    if (!collection->options().dynamic) {
      auto pulled =
          PullGeneration(leader, name, collection->options().dir, {});
      if (!pulled.ok()) return pulled.status();
      return collection->Refresh(&pool_);
    }
    snapshot::SnapshotStore store(collection->options().dir);
    // Bounded only as a churn backstop: each iteration either applies
    // records (cursor advances) or pulls a newer generation lineage, so
    // hitting the cap means the leader is checkpointing faster than we can
    // pull — retry later, don't spin.
    for (int round = 0; round < 1000; ++round) {
      const std::uint64_t applied = collection->AppliedSeq();
      auto segment = leader.FetchWalSince(name, applied);
      if (!segment.ok()) return segment.status();
      const WireWalSegment& seg = segment.value();
      const std::uint64_t local_epoch = store.ReadEpoch();
      if (seg.leader_epoch < local_epoch) {
        // Fencing: this peer was deposed — a newer leader's epoch is
        // already persisted here. Nothing it ships may be applied.
        return Status::InvalidArgument(
            "stale leader epoch " + std::to_string(seg.leader_epoch) +
            " (locally accepted epoch " + std::to_string(local_epoch) + ")");
      }
      if (seg.leader_epoch > local_epoch) {
        MVP_RETURN_NOT_OK(store.WriteEpoch(seg.leader_epoch));
      }
      collection->SetGenerationLag(
          seg.applied_seq > applied ? seg.applied_seq - applied : 0);
      if (seg.generation != collection->Info().generation) {
        // The leader checkpointed or compacted: its base generation moved.
        // Tailing the WAL alone would leave everything in this follower's
        // memtable — same answers, but a structurally different index than
        // the leader serves (divergent SearchStats). Pull the lineage and
        // reopen so the follower mirrors the leader's base + memtable
        // split, then resume tailing from the reopened watermark.
        auto pulled =
            PullGeneration(leader, name, collection->options().dir, {});
        if (!pulled.ok()) return pulled.status();
        MVP_RETURN_NOT_OK(collection->Reopen(&pool_));
        continue;
      }
      if (seg.records.empty()) {
        if (applied >= seg.applied_seq) {
          collection->SetGenerationLag(0);
          return Status::OK();  // caught up to the leader's durable state
        }
        // Cursor below the leader's WAL floor: the records were folded
        // into generations and truncated. Pull the lineage, hot-swap the
        // overlay onto it, and resume tailing from its watermark.
        auto pulled =
            PullGeneration(leader, name, collection->options().dir, {});
        if (!pulled.ok()) return pulled.status();
        MVP_RETURN_NOT_OK(collection->Reopen(&pool_));
        continue;
      }
      MVP_RETURN_NOT_OK(collection->ApplySegment(seg));
      if (collection->AppliedSeq() >= seg.applied_seq) {
        collection->SetGenerationLag(0);
        return Status::OK();
      }
    }
    return Status::IOError(
        "follower did not converge (leader checkpointing continuously?)");
  }

  bool draining() const {
    MutexLock lock(&mu_);
    return draining_;
  }

  void Drain(std::uint64_t deadline_ns) {
    {
      MutexLock lock(&mu_);
      if (stopping_ || draining_) return;
      draining_ = true;
    }
    if (listen_fd_ >= 0) {
      // Stop accepting; existing connections keep their sockets until the
      // in-flight work quiesces or the deadline passes.
      (void)fault::net::ShutdownSocket(listen_fd_, SHUT_RDWR,
                                       "server:drain");
    }
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::nanoseconds(deadline_ns);
    // Poll rather than wait: our CondVar deliberately has no timed wait,
    // and a 1ms poll is invisible next to a drain deadline.
    while (std::chrono::steady_clock::now() < deadline) {
      {
        MutexLock lock(&mu_);
        if (active_requests_ == 0) break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    Stop();
  }

 private:
  ServerOptions options_;
  serve::ThreadPool pool_;
  std::vector<std::unique_ptr<Collection>> collections_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread accept_thread_;

  mutable Mutex mu_;
  bool stopping_ MVP_GUARDED_BY(mu_) = false;
  bool draining_ MVP_GUARDED_BY(mu_) = false;
  std::size_t active_requests_ MVP_GUARDED_BY(mu_) = 0;
  std::vector<int> conn_fds_ MVP_GUARDED_BY(mu_);
  std::vector<std::thread> conn_threads_ MVP_GUARDED_BY(mu_);
};

Server::Server(std::unique_ptr<Impl> impl) : impl_(std::move(impl)) {}
Server::~Server() = default;

Result<std::unique_ptr<Server>> Server::Start(ServerOptions options) {
  auto impl = std::make_unique<Impl>(std::move(options));
  MVP_RETURN_NOT_OK(impl->Start());
  return std::unique_ptr<Server>(new Server(std::move(impl)));
}

std::uint16_t Server::port() const { return impl_->port(); }

Status Server::Refresh(const std::string& collection) {
  return impl_->Refresh(collection);
}

Result<std::uint64_t> Server::Insert(const std::string& collection,
                                     const std::vector<double>& point) {
  return impl_->Insert(collection, point);
}

Status Server::Erase(const std::string& collection, std::uint64_t stable_id) {
  return impl_->Erase(collection, stable_id);
}

Result<std::uint64_t> Server::Checkpoint(const std::string& collection) {
  return impl_->Checkpoint(collection);
}

Result<std::uint64_t> Server::Compact(const std::string& collection) {
  return impl_->Compact(collection);
}

Result<std::uint64_t> Server::Promote(const std::string& collection) {
  return impl_->Promote(collection);
}

Status Server::Follow(const std::string& collection, Client& leader) {
  return impl_->Follow(collection, leader);
}

bool Server::draining() const { return impl_->draining(); }

void Server::Drain(std::uint64_t deadline_ns) { impl_->Drain(deadline_ns); }

void Server::Stop() { impl_->Stop(); }

}  // namespace mvp::net

#endif  // MVPTREE_FAULT_FS_POSIX

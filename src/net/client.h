#ifndef MVPTREE_NET_CLIENT_H_
#define MVPTREE_NET_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "fault/fault_fs.h"  // platform gate: defines MVPTREE_FAULT_FS_POSIX
#include "net/wire.h"
#include "serve/serve_stats.h"

/// \file
/// Client side of the mvpt wire protocol: one blocking connection, one
/// request/response in flight at a time. Every RPC returns the server's
/// Status verbatim — a deadline miss on the server comes back as the same
/// DeadlineExceeded (with the partial answer attached) an in-process
/// RunBatch caller would see. Used by the `mvpt connect/query/batch-query`
/// subcommands, the replication puller, and the loopback tests/bench.

#if defined(MVPTREE_FAULT_FS_POSIX) || defined(MVPTREE_DOXYGEN)

namespace mvp::net {

/// A connected client. Movable, not copyable; closes on destruction.
class Client {
 public:
  Client() = default;
  ~Client() { Close(); }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept { *this = std::move(other); }
  Client& operator=(Client&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }

  /// Connects to `host:port`. `host` must be a dotted-quad IPv4 address or
  /// "localhost" — the serving subsystem is loopback-scoped (see
  /// docs/network_serving.md), so there is no resolver dependency.
  static Result<Client> Connect(const std::string& host, std::uint16_t port);

  /// Connect with a per-attempt I/O timeout: the socket's send/receive
  /// timeouts are set to `timeout_ns` (0 = block forever), so a dead or
  /// wedged server surfaces as an IOError after the timeout instead of a
  /// hang — the property the failover client builds on.
  static Result<Client> Connect(const std::string& host, std::uint16_t port,
                                std::uint64_t timeout_ns);

  bool connected() const { return fd_ >= 0; }

  /// Round-trips a no-op; OK means the server speaks the protocol.
  Status Ping();

  /// All collections the server hosts, with serving generation and size.
  Result<std::vector<WireCollectionInfo>> ListCollections();

  /// Runs one query; the outcome's own status carries the query verdict
  /// (OK / DeadlineExceeded / ResourceExhausted / NotFound), while the
  /// returned Result is about the conversation itself.
  Result<WireOutcome> Query(const std::string& collection,
                            const WireQuery& query);

  /// Runs a batch in one round trip; outcomes stream back per-query and
  /// arrive in input order.
  Result<std::vector<WireOutcome>> BatchQuery(
      const std::string& collection, const std::vector<WireQuery>& queries);

  /// The collection's cumulative ServeStats (ok/partial/expired/shed and
  /// latency percentiles), as maintained server-side by the executor.
  Result<serve::ServeStatsSnapshot> Stats(const std::string& collection);

  /// The committed snapshot generation of the collection's store.
  Result<std::uint64_t> CurrentGeneration(const std::string& collection);

  /// Raw MANIFEST bytes of generation `gen` (replication).
  Result<std::vector<std::uint8_t>> FetchManifest(const std::string& collection,
                                                  std::uint64_t gen);

  /// Raw container bytes `[offset, offset+length)` of generation `gen`
  /// (replication; the server caps `length` per request).
  Result<std::vector<std::uint8_t>> FetchChunk(const std::string& collection,
                                               std::uint64_t gen,
                                               std::uint64_t offset,
                                               std::uint64_t length);

  /// The leader's synced WAL tail past `since` for a dynamic collection,
  /// with its epoch and shipping watermarks (WAL shipping; see
  /// docs/network_serving.md). Empty records with `floor_seq > since`
  /// means the tail was truncated into generations — pull those instead.
  Result<WireWalSegment> FetchWalSince(const std::string& collection,
                                       std::uint64_t since);

  /// Serving/draining state plus leader epoch and replication lag —
  /// `collection` scopes the epoch/lag, "" reports server-wide maxima.
  Result<WireReadiness> Readiness(const std::string& collection);

  void Close();

 private:
  /// Sends `request` as one frame and receives the response frame,
  /// returning its payload with the leading response status already
  /// decoded and checked (`*body_offset` points past it).
  Result<std::vector<std::uint8_t>> RoundTrip(const BinaryWriter& request,
                                              std::size_t* body_offset);

  int fd_ = -1;
};

}  // namespace mvp::net

#endif  // MVPTREE_FAULT_FS_POSIX

#endif  // MVPTREE_NET_CLIENT_H_

#include "net/failover.h"

#if defined(MVPTREE_FAULT_FS_POSIX)

#include <chrono>
#include <memory>
#include <optional>
#include <thread>
#include <utility>

#include "common/thread_annotations.h"

namespace mvp::net {
namespace {

constexpr std::size_t kNoExclude = static_cast<std::size_t>(-1);

const Status& StatusOfResult(const Status& status) { return status; }
template <typename T>
Status StatusOfResult(const Result<T>& result) {
  return result.status();
}

/// Connects to the first HEALTHY endpoint at or after `start` (wrapping,
/// skipping `exclude` when another choice exists): the socket must accept,
/// the server must answer Ping, and Readiness must not report draining —
/// a draining server is deliberately shedding clients to its peers.
Result<Client> ConnectHealthy(const std::vector<Endpoint>& endpoints,
                              const FailoverOptions& options,
                              std::size_t start, std::size_t exclude,
                              std::size_t* picked) {
  Status last = Status::IOError("no endpoints configured");
  const std::size_t n = endpoints.size();
  for (std::size_t offset = 0; offset < n; ++offset) {
    const std::size_t index = (start + offset) % n;
    if (index == exclude && n > 1) continue;
    const std::string label =
        endpoints[index].host + ":" + std::to_string(endpoints[index].port);
    auto client = Client::Connect(endpoints[index].host,
                                  endpoints[index].port,
                                  options.attempt_timeout_ns);
    if (!client.ok()) {
      last = client.status();
      continue;
    }
    const Status ping = client.value().Ping();
    if (!ping.ok()) {
      last = ping;
      continue;
    }
    auto readiness = client.value().Readiness("");
    if (!readiness.ok()) {
      last = readiness.status();
      continue;
    }
    if (readiness.value().state ==
        static_cast<std::uint8_t>(ReadinessState::kDraining)) {
      last = Status::ResourceExhausted("endpoint " + label + " is draining");
      continue;
    }
    *picked = index;
    return std::move(client).ValueOrDie();
  }
  return last;
}

/// Shared rendezvous between the primary and hedge attempts. The loser's
/// detached thread holds only this (via shared_ptr) and its own locals, so
/// the caller returns the moment a winner lands — the whole point of the
/// hedge — while the loser finishes harmlessly in the background. The
/// caller POLLS (1ms) rather than waiting on a condvar: the annotated
/// CondVar deliberately has no timed wait, and the hedge delay needs one.
struct HedgeState {
  Mutex mu;
  int finished MVP_GUARDED_BY(mu) = 0;
  bool have_winner MVP_GUARDED_BY(mu) = false;
  std::size_t winner_index MVP_GUARDED_BY(mu) = 0;
  Client winner_client MVP_GUARDED_BY(mu);
  std::optional<WireOutcome> outcome MVP_GUARDED_BY(mu);
};

void HedgeAttempt(std::shared_ptr<HedgeState> state,
                  std::vector<Endpoint> endpoints, FailoverOptions options,
                  std::size_t start, std::size_t exclude,
                  std::string collection, WireQuery query) {
  std::size_t picked = start;
  auto client = ConnectHealthy(endpoints, options, start, exclude, &picked);
  std::optional<WireOutcome> outcome;
  if (client.ok()) {
    auto result = client.value().Query(collection, query);
    if (result.ok()) outcome = std::move(result).ValueOrDie();
  }
  MutexLock lock(&state->mu);
  ++state->finished;
  if (outcome.has_value() && !state->have_winner) {
    state->have_winner = true;
    state->winner_index = picked;
    state->outcome = std::move(outcome);
    state->winner_client = std::move(client).ValueOrDie();
  }
}

}  // namespace

FailoverClient::FailoverClient(std::vector<Endpoint> endpoints,
                               FailoverOptions options)
    : endpoints_(std::move(endpoints)), options_(std::move(options)) {}

void FailoverClient::Close() { client_.Close(); }

bool FailoverClient::ShouldFailover(const Status& status) {
  switch (status.code()) {
    case StatusCode::kIOError:            // dead socket, timeout, torn frame
    case StatusCode::kCorruption:         // stream lost sync mid-frame
    case StatusCode::kResourceExhausted:  // draining or connection-capped
      return true;
    default:
      return false;  // a deterministic verdict every replica would repeat
  }
}

Status FailoverClient::EnsureConnected(std::size_t exclude) {
  if (client_.connected()) return Status::OK();
  return ConnectSweep(exclude);
}

Status FailoverClient::ConnectSweep(std::size_t exclude) {
  std::size_t picked = active_;
  auto client =
      ConnectHealthy(endpoints_, options_, active_, exclude, &picked);
  if (!client.ok()) return client.status();
  if (ever_connected_) ++failovers_;
  ever_connected_ = true;
  active_ = picked;
  client_ = std::move(client).ValueOrDie();
  return Status::OK();
}

template <typename Fn>
auto FailoverClient::WithFailover(Fn&& fn) -> decltype(fn()) {
  using R = decltype(fn());
  fault::RetryOptions retry = options_.retry;
  if (!retry.retryable) {
    retry.retryable = [](const Status& s) { return ShouldFailover(s); };
  }
  return fault::RetryWithBackoff(retry, [&]() -> R {
    R last = Status::IOError("no endpoints configured");
    for (std::size_t sweep = 0; sweep < endpoints_.size(); ++sweep) {
      const Status connect = EnsureConnected(kNoExclude);
      if (!connect.ok()) {
        // The sweep inside ConnectSweep already tried every endpoint;
        // leave the rest to the backoff schedule.
        return R(connect);
      }
      last = fn();
      const Status status = StatusOfResult(last);
      if (status.ok() || !ShouldFailover(status)) return last;
      // The conversation (or this server's willingness) died; drop the
      // connection and let the next iteration land on the next endpoint.
      client_.Close();
      active_ = (active_ + 1) % endpoints_.size();
    }
    return last;
  });
}

Result<WireOutcome> FailoverClient::Query(const std::string& collection,
                                          const WireQuery& query) {
  if (options_.hedged_reads && endpoints_.size() > 1) {
    auto state = std::make_shared<HedgeState>();
    int launched = 1;
    std::thread(HedgeAttempt, state, endpoints_, options_, active_,
                kNoExclude, collection, query)
        .detach();
    // Give the primary hedge_delay_ns to land before racing it.
    const auto hedge_deadline =
        std::chrono::steady_clock::now() +
        std::chrono::nanoseconds(options_.hedge_delay_ns);
    bool primary_done = false;
    for (;;) {
      {
        MutexLock lock(&state->mu);
        primary_done = state->finished >= launched;
      }
      if (primary_done || std::chrono::steady_clock::now() >= hedge_deadline) {
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    if (!primary_done) {
      // Primary is slow; race a second attempt on a different endpoint.
      const std::size_t hedge_start = (active_ + 1) % endpoints_.size();
      const std::size_t hedge_exclude = active_;
      std::thread(HedgeAttempt, state, endpoints_, options_, hedge_start,
                  hedge_exclude, collection, query)
          .detach();
      launched = 2;
    }
    // Take whichever attempt wins; give up once every launched attempt
    // reported in without producing a winner.
    for (;;) {
      {
        MutexLock lock(&state->mu);
        if (state->have_winner) {
          // Adopt the winner's connection so follow-up RPCs reuse it.
          client_.Close();
          client_ = std::move(state->winner_client);
          if (ever_connected_ && state->winner_index != active_) {
            ++failovers_;
          }
          ever_connected_ = true;
          active_ = state->winner_index;
          return std::move(*state->outcome);
        }
        if (state->finished >= launched) break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    // Both one-shot attempts failed (e.g. everything was briefly down);
    // fall through to the sequential path and its backoff schedule.
  }
  return WithFailover([&] { return client_.Query(collection, query); });
}

Result<std::vector<WireOutcome>> FailoverClient::BatchQuery(
    const std::string& collection, const std::vector<WireQuery>& queries) {
  return WithFailover(
      [&] { return client_.BatchQuery(collection, queries); });
}

Result<WireReadiness> FailoverClient::Readiness(
    const std::string& collection) {
  return WithFailover([&] { return client_.Readiness(collection); });
}

Result<std::vector<WireCollectionInfo>> FailoverClient::ListCollections() {
  return WithFailover([&] { return client_.ListCollections(); });
}

}  // namespace mvp::net

#endif  // MVPTREE_FAULT_FS_POSIX

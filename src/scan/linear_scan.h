#ifndef MVPTREE_SCAN_LINEAR_SCAN_H_
#define MVPTREE_SCAN_LINEAR_SCAN_H_

#include <algorithm>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "common/query.h"
#include "metric/metric.h"

/// \file
/// Brute-force similarity search: exactly n distance computations per query.
/// Serves as (a) the ground truth every index is tested against, and (b) the
/// baseline the paper's worst-case discussion compares to ("even in the
/// worst case, the number of distance computations made by the search
/// algorithm is far less than N, making it a significant improvement over
/// linear search", §4.3).

namespace mvp::scan {

template <typename Object, metric::MetricFor<Object> Metric>
class LinearScan {
 public:
  /// Takes ownership of the objects; ids are positions in `objects`.
  LinearScan(std::vector<Object> objects, Metric metric)
      : objects_(std::move(objects)), metric_(std::move(metric)) {}

  /// All objects within `radius` of `query` (closed ball, as in the paper's
  /// near-neighbor query definition: d(Xi, Y) <= r). Sorted by distance.
  std::vector<Neighbor> RangeSearch(const Object& query, double radius,
                                    SearchStats* stats = nullptr) const {
    MVP_DCHECK(radius >= 0);
    std::vector<Neighbor> result;
    for (std::size_t id = 0; id < objects_.size(); ++id) {
      const double d = metric_(query, objects_[id]);
      if (d <= radius) result.push_back(Neighbor{id, d});
    }
    std::sort(result.begin(), result.end(), NeighborLess);
    if (stats != nullptr) {
      stats->distance_computations += objects_.size();
    }
    return result;
  }

  /// The k closest objects (all of them if k >= size). Sorted by distance,
  /// ties broken by id.
  std::vector<Neighbor> KnnSearch(const Object& query, std::size_t k,
                                  SearchStats* stats = nullptr) const {
    std::vector<Neighbor> all(objects_.size());
    for (std::size_t id = 0; id < objects_.size(); ++id) {
      all[id] = Neighbor{id, metric_(query, objects_[id])};
    }
    if (stats != nullptr) {
      stats->distance_computations += objects_.size();
    }
    if (k < all.size()) {
      std::nth_element(all.begin(), all.begin() + static_cast<std::ptrdiff_t>(k),
                       all.end(), NeighborLess);
      all.resize(k);
    }
    std::sort(all.begin(), all.end(), NeighborLess);
    return all;
  }

  /// The k objects farthest from `query` (the paper's "farthest, or the k
  /// farthest objects" query form, §2). Sorted by decreasing distance.
  std::vector<Neighbor> FarthestSearch(const Object& query, std::size_t k,
                                       SearchStats* stats = nullptr) const {
    std::vector<Neighbor> all(objects_.size());
    for (std::size_t id = 0; id < objects_.size(); ++id) {
      all[id] = Neighbor{id, metric_(query, objects_[id])};
    }
    if (stats != nullptr) {
      stats->distance_computations += objects_.size();
    }
    auto greater = [](const Neighbor& a, const Neighbor& b) {
      if (a.distance != b.distance) return a.distance > b.distance;
      return a.id < b.id;
    };
    if (k < all.size()) {
      std::nth_element(all.begin(), all.begin() + static_cast<std::ptrdiff_t>(k),
                       all.end(), greater);
      all.resize(k);
    }
    std::sort(all.begin(), all.end(), greater);
    return all;
  }

  std::size_t size() const { return objects_.size(); }
  const Object& object(std::size_t id) const {
    MVP_DCHECK(id < objects_.size());
    return objects_[id];
  }

  /// A scan has no index structure; all-zero stats keep it usable wherever
  /// the harness expects an index (e.g. as the baseline row of a sweep).
  TreeStats Stats() const { return TreeStats{}; }

 private:
  std::vector<Object> objects_;
  Metric metric_;
};

}  // namespace mvp::scan

#endif  // MVPTREE_SCAN_LINEAR_SCAN_H_
